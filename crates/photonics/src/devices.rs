//! Optoelectronic periphery devices.
//!
//! These are the non-resonator devices every noncoherent photonic accelerator
//! needs (paper Fig. 1 and Fig. 3): Mach–Zehnder modulators to imprint
//! activations, VCSELs to regenerate partial sums into the optical domain,
//! photodetectors and balanced photodetectors to perform summation,
//! transimpedance amplifiers, and the ADC/DAC transceivers that bridge to the
//! electronic control unit.  The latency and power numbers are those of the
//! paper's Table II.

use serde::{Deserialize, Serialize};

use crate::units::{Dbm, GigaHertz, MilliWatts, Seconds};

/// Latency and power of a single optoelectronic device instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Time for the device to perform its operation once.
    pub latency: Seconds,
    /// Static + dynamic power drawn while active.
    pub power: MilliWatts,
}

impl DeviceSpec {
    /// Creates a spec from a latency and power.
    #[must_use]
    pub fn new(latency: Seconds, power: MilliWatts) -> Self {
        Self { latency, power }
    }
}

/// Vertical-cavity surface-emitting laser used to regenerate partial sums into
/// the optical domain (Table II: 10 ns, 0.66 mW).
#[must_use]
pub fn vcsel() -> DeviceSpec {
    DeviceSpec::new(Seconds::from_nanos(10.0), MilliWatts::new(0.66))
}

/// Transimpedance amplifier following each photodetector
/// (Table II: 0.15 ns, 7.2 mW).
#[must_use]
pub fn tia() -> DeviceSpec {
    DeviceSpec::new(Seconds::from_nanos(0.15), MilliWatts::new(7.2))
}

/// Photodetector performing optical-domain summation
/// (Table II: 5.8 ps, 2.8 mW).
#[must_use]
pub fn photodetector() -> DeviceSpec {
    DeviceSpec::new(Seconds::from_picos(5.8), MilliWatts::new(2.8))
}

/// Electro-optic tuner spec (Table II: 20 ns latency; power is per-nm and
/// handled by the tuning crate, so the power field holds 0 here).
#[must_use]
pub fn eo_tuner_latency() -> Seconds {
    Seconds::from_nanos(20.0)
}

/// Thermo-optic tuner latency (Table II: 4 µs).
#[must_use]
pub fn to_tuner_latency() -> Seconds {
    Seconds::from_micros(4.0)
}

/// Photodetector sensitivity floor used in the laser-power model, Eq. (7).
///
/// A −20 dBm sensitivity is typical of the Si-Ge avalanche photodiodes cited
/// by the paper (Table II reference [34]).
#[must_use]
pub fn photodetector_sensitivity() -> Dbm {
    Dbm::new(-20.0)
}

/// Mach–Zehnder modulator used to imprint activations onto wavelengths at the
/// input of the accelerator.  Modelled with the same modulation loss as the
/// MR modulation path and a 0.5 mW drive power at the Table II data rates.
#[must_use]
pub fn mzm() -> DeviceSpec {
    DeviceSpec::new(Seconds::from_picos(20.0), MilliWatts::new(0.5))
}

/// ADC/DAC-based transceiver from the paper's reference [37]: a 1-to-56 Gb/s
/// PAM-4 transceiver consuming below 250 mW at the maximum rate.
///
/// The accelerator uses one transceiver lane per VDP arm to convert partial
/// sums; power is scaled linearly with the operating rate relative to the
/// 56 Gb/s peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transceiver {
    /// Peak data rate supported by the transceiver.
    pub max_rate_gbps: f64,
    /// Power consumed when operating at the peak rate.
    pub max_power: MilliWatts,
}

impl Transceiver {
    /// The ISSCC 2019 1-to-56 Gb/s transceiver used by the paper.
    #[must_use]
    pub fn isscc2019() -> Self {
        Self {
            max_rate_gbps: 56.0,
            max_power: MilliWatts::new(250.0),
        }
    }

    /// Power consumed when operating at `rate_gbps`, clamped to the peak rate.
    #[must_use]
    pub fn power_at_rate(&self, rate_gbps: f64) -> MilliWatts {
        let rate = rate_gbps.clamp(0.0, self.max_rate_gbps);
        self.max_power * (rate / self.max_rate_gbps)
    }

    /// Energy per bit at `rate_gbps` in picojoules per bit.
    #[must_use]
    pub fn energy_per_bit_pj(&self, rate_gbps: f64) -> f64 {
        if rate_gbps <= 0.0 {
            return 0.0;
        }
        // mW / Gbps = pJ/bit.
        self.power_at_rate(rate_gbps).value() / rate_gbps.min(self.max_rate_gbps)
    }
}

impl Default for Transceiver {
    fn default() -> Self {
        Self::isscc2019()
    }
}

/// Operating data rate of the photonic datapath.
///
/// Noncoherent accelerators are clocked by how fast activations and weights
/// can be (re)imprinted; with EO tuning at 20 ns the paper's effective vector
/// throughput sits in the multi-GHz range for the photodetection path while
/// reprogramming dominates. This type simply carries the symbol rate used for
/// energy-per-bit accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataRate {
    /// Symbol (sample) rate of the datapath.
    pub rate: GigaHertz,
    /// Bits carried per symbol (the resolution of the analog encoding).
    pub bits_per_symbol: u32,
}

impl DataRate {
    /// Creates a data rate.
    #[must_use]
    pub fn new(rate: GigaHertz, bits_per_symbol: u32) -> Self {
        Self {
            rate,
            bits_per_symbol,
        }
    }

    /// Effective bit rate in Gb/s.
    #[must_use]
    pub fn gbps(&self) -> f64 {
        self.rate.value() * f64::from(self.bits_per_symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        assert!((vcsel().latency.to_nanos() - 10.0).abs() < 1e-9);
        assert!((vcsel().power.value() - 0.66).abs() < 1e-12);
        assert!((tia().latency.to_nanos() - 0.15).abs() < 1e-9);
        assert!((tia().power.value() - 7.2).abs() < 1e-12);
        assert!((photodetector().latency.value() - 5.8e-12).abs() < 1e-20);
        assert!((photodetector().power.value() - 2.8).abs() < 1e-12);
        assert!((eo_tuner_latency().to_nanos() - 20.0).abs() < 1e-9);
        assert!((to_tuner_latency().to_micros() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn photodetector_latency_is_much_faster_than_tuning() {
        assert!(photodetector().latency.value() < eo_tuner_latency().value());
        assert!(eo_tuner_latency().value() < to_tuner_latency().value());
    }

    #[test]
    fn transceiver_power_scales_with_rate() {
        let t = Transceiver::isscc2019();
        assert!((t.power_at_rate(56.0).value() - 250.0).abs() < 1e-9);
        assert!((t.power_at_rate(28.0).value() - 125.0).abs() < 1e-9);
        // Clamped above the peak rate.
        assert!((t.power_at_rate(100.0).value() - 250.0).abs() < 1e-9);
        assert_eq!(t.power_at_rate(0.0).value(), 0.0);
    }

    #[test]
    fn transceiver_energy_per_bit() {
        let t = Transceiver::isscc2019();
        // 250 mW at 56 Gb/s ≈ 4.46 pJ/bit.
        assert!((t.energy_per_bit_pj(56.0) - 250.0 / 56.0).abs() < 1e-9);
        assert_eq!(t.energy_per_bit_pj(0.0), 0.0);
        // Because power scales linearly with rate, pJ/bit is constant within
        // the supported range.
        assert!((t.energy_per_bit_pj(10.0) - t.energy_per_bit_pj(56.0)).abs() < 1e-9);
    }

    #[test]
    fn data_rate_bit_rate() {
        let r = DataRate::new(GigaHertz::new(5.0), 16);
        assert!((r.gbps() - 80.0).abs() < 1e-12);
    }
}
