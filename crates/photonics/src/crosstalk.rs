//! Inter-channel (spectral) crosstalk and achievable resolution.
//!
//! When several MRs share a bus waveguide, the Lorentzian tail of each ring's
//! response overlaps its neighbours' channels.  The paper quantifies this with
//! Eqs. (8)–(10):
//!
//! * Eq. (8): `φ(i, j) = δ² / ((λᵢ − λⱼ)² + δ²)` — the noise content that the
//!   *j*-th MR contributes to the signal of the *i*-th MR, where `δ = λᵢ/(2Q)`.
//! * Eq. (9): `P_noise = Σᵢ φ(i, j) · P_in[i]` — total noise power picked up.
//! * Eq. (10): `Resolution = 1 / max|P_noise|` — for unit input power, the
//!   number of distinguishable levels; in bits this is `log2` of that value.
//!
//! With the paper's optimized MRs (Q ≈ 8000, FSR 18 nm) and wavelength reuse
//! keeping channel separations above 1 nm, 15 MRs per bank achieve 16-bit
//! resolution (§V.B); DEAP-CNN reaches only 4 bits and HolyLight 2 bits per
//! microdisk.

use serde::{Deserialize, Serialize};

use crate::error::{PhotonicsError, Result};
use crate::units::Nanometers;
use crate::wdm::WdmGrid;

/// Inter-channel crosstalk analysis for a bank of MRs on a shared bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelCrosstalkAnalysis {
    channels: Vec<Nanometers>,
    q_factor: f64,
}

impl ChannelCrosstalkAnalysis {
    /// Creates an analysis for explicit channel wavelengths and a shared Q
    /// factor.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if fewer than one channel
    /// is supplied or the Q factor is not strictly positive.
    pub fn new(channels: Vec<Nanometers>, q_factor: f64) -> Result<Self> {
        if channels.is_empty() {
            return Err(PhotonicsError::InvalidParameter {
                name: "channels",
                reason: "crosstalk analysis needs at least one channel".into(),
            });
        }
        if q_factor <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "q_factor",
                reason: format!("Q factor must be positive, got {q_factor}"),
            });
        }
        Ok(Self { channels, q_factor })
    }

    /// Creates an analysis from a WDM grid.
    ///
    /// # Errors
    ///
    /// Same as [`ChannelCrosstalkAnalysis::new`].
    pub fn from_grid(grid: &WdmGrid, q_factor: f64) -> Result<Self> {
        Self::new(grid.channels().to_vec(), q_factor)
    }

    /// Returns the number of channels in the analysis.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Eq. (8): noise coupling coefficient from channel `j` into channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[must_use]
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.channels.len() && j < self.channels.len(),
            "channel index out of bounds"
        );
        if i == j {
            return 1.0;
        }
        let lambda_i = self.channels[i].value();
        let lambda_j = self.channels[j].value();
        let delta = lambda_i / (2.0 * self.q_factor);
        let detuning = lambda_i - lambda_j;
        delta * delta / (detuning * detuning + delta * delta)
    }

    /// Eq. (9): total noise power in channel `i` for unit input power per
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn noise_power(&self, i: usize) -> f64 {
        (0..self.channels.len())
            .filter(|&j| j != i)
            .map(|j| self.coupling(i, j))
            .sum()
    }

    /// The worst (largest) noise power over all channels.
    #[must_use]
    pub fn worst_noise_power(&self) -> f64 {
        (0..self.channels.len())
            .map(|i| self.noise_power(i))
            .fold(0.0, f64::max)
    }

    /// Eq. (10): number of distinguishable signal levels, `1 / max|P_noise|`.
    ///
    /// Returns `f64::INFINITY` for a single channel (no crosstalk at all).
    #[must_use]
    pub fn resolution_levels(&self) -> f64 {
        let noise = self.worst_noise_power();
        if noise <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / noise
        }
    }

    /// Achievable resolution in bits, following the paper's reading of
    /// Eq. (10): the value `1 / max|P_noise|` is reported directly as the bit
    /// resolution (clamped to at least one bit and capped at `cap_bits`).
    ///
    /// Under this reading the paper's own numbers are reproduced: the
    /// optimized CrossLight bank (Q ≈ 8000, >1 nm separations, 15 MRs) clears
    /// 16 bits comfortably, DEAP-CNN's dense low-Q channels land near 4 bits,
    /// and a microdisk's broad response near 2 bits.  The paper treats 16
    /// bits as the ceiling of interest, so callers usually pass
    /// `cap_bits = 16`.
    #[must_use]
    pub fn resolution_bits(&self, cap_bits: u32) -> u32 {
        let levels = self.resolution_levels();
        if levels.is_infinite() {
            return cap_bits;
        }
        let bits = levels.floor();
        if bits < 1.0 {
            1
        } else {
            (bits as u32).min(cap_bits)
        }
    }
}

/// Resolution achievable by a uniform bank: `mr_count` channels equally spaced
/// by `spacing`, all with quality factor `q_factor`.
///
/// This is the function the CrossLight resolution analysis (§V.B) sweeps.
///
/// # Errors
///
/// Returns [`PhotonicsError::InvalidParameter`] for an empty bank, a
/// non-positive spacing, or a non-positive Q factor.
pub fn bank_resolution_bits(
    mr_count: usize,
    spacing: Nanometers,
    q_factor: f64,
    cap_bits: u32,
) -> Result<u32> {
    if mr_count == 0 {
        return Err(PhotonicsError::InvalidParameter {
            name: "mr_count",
            reason: "bank must contain at least one MR".into(),
        });
    }
    if spacing.value() <= 0.0 {
        return Err(PhotonicsError::InvalidParameter {
            name: "spacing",
            reason: format!("channel spacing must be positive, got {spacing}"),
        });
    }
    let channels: Vec<Nanometers> = (0..mr_count)
        .map(|i| Nanometers::new(1550.0) + spacing * i as f64)
        .collect();
    let analysis = ChannelCrosstalkAnalysis::new(channels, q_factor)?;
    Ok(analysis.resolution_bits(cap_bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_is_one_on_diagonal_and_small_off_diagonal() {
        let grid = WdmGrid::c_band_grid(15, Nanometers::new(1.2)).expect("fits");
        let analysis = ChannelCrosstalkAnalysis::from_grid(&grid, 8000.0).expect("valid");
        assert!((analysis.coupling(3, 3) - 1.0).abs() < 1e-12);
        let adjacent = analysis.coupling(3, 4);
        let distant = analysis.coupling(0, 14);
        assert!(adjacent < 0.01, "adjacent coupling {adjacent}");
        assert!(distant < adjacent);
    }

    #[test]
    fn paper_operating_point_achieves_16_bits() {
        // §V.B: Q ≈ 8000, FSR 18 nm, >1 nm separations, 15 MRs per bank → 16 bits.
        let bits = bank_resolution_bits(15, Nanometers::new(1.2), 8000.0, 16).expect("valid");
        assert_eq!(bits, 16);
    }

    #[test]
    fn low_q_and_tight_spacing_degrade_resolution() {
        // DEAP-CNN-like conditions: low Q and dense channels → few bits.
        let tight = bank_resolution_bits(15, Nanometers::new(0.3), 2000.0, 16).expect("valid");
        let paper = bank_resolution_bits(15, Nanometers::new(1.2), 8000.0, 16).expect("valid");
        assert!(tight < paper);
        assert!(tight <= 8, "tight-spacing resolution was {tight} bits");
    }

    #[test]
    fn resolution_decreases_with_more_mrs() {
        let few = bank_resolution_bits(5, Nanometers::new(0.4), 8000.0, 24).expect("valid");
        let many = bank_resolution_bits(30, Nanometers::new(0.4), 8000.0, 24).expect("valid");
        assert!(many <= few);
    }

    #[test]
    fn single_channel_is_capped_not_infinite() {
        let bits = bank_resolution_bits(1, Nanometers::new(1.0), 8000.0, 16).expect("valid");
        assert_eq!(bits, 16);
        let analysis =
            ChannelCrosstalkAnalysis::new(vec![Nanometers::new(1550.0)], 8000.0).expect("valid");
        assert!(analysis.resolution_levels().is_infinite());
    }

    #[test]
    fn noise_power_is_worst_for_middle_channels() {
        let grid = WdmGrid::c_band_grid(15, Nanometers::new(1.2)).expect("fits");
        let analysis = ChannelCrosstalkAnalysis::from_grid(&grid, 8000.0).expect("valid");
        let edge = analysis.noise_power(0);
        let middle = analysis.noise_power(7);
        assert!(middle > edge);
        assert!(analysis.worst_noise_power() >= middle);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(ChannelCrosstalkAnalysis::new(vec![], 8000.0).is_err());
        assert!(ChannelCrosstalkAnalysis::new(vec![Nanometers::new(1550.0)], 0.0).is_err());
        assert!(bank_resolution_bits(0, Nanometers::new(1.0), 8000.0, 16).is_err());
        assert!(bank_resolution_bits(5, Nanometers::new(0.0), 8000.0, 16).is_err());
        assert!(bank_resolution_bits(5, Nanometers::new(1.0), -1.0, 16).is_err());
    }

    #[test]
    fn resolution_bits_never_below_one() {
        // Pathologically dense grid still reports at least 1 bit.
        let bits = bank_resolution_bits(30, Nanometers::new(0.01), 500.0, 16).expect("valid");
        assert!(bits >= 1);
    }
}
