//! Inter-channel (spectral) crosstalk and achievable resolution.
//!
//! When several MRs share a bus waveguide, the Lorentzian tail of each ring's
//! response overlaps its neighbours' channels.  The paper quantifies this with
//! Eqs. (8)–(10):
//!
//! * Eq. (8): `φ(i, j) = δ² / ((λᵢ − λⱼ)² + δ²)` — the noise content that the
//!   *j*-th MR contributes to the signal of the *i*-th MR, where `δ = λᵢ/(2Q)`.
//! * Eq. (9): `P_noise = Σᵢ φ(i, j) · P_in[i]` — total noise power picked up.
//! * Eq. (10): `Resolution = 1 / max|P_noise|` — for unit input power, the
//!   number of distinguishable levels; in bits this is `log2` of that value.
//!
//! With the paper's optimized MRs (Q ≈ 8000, FSR 18 nm) and wavelength reuse
//! keeping channel separations above 1 nm, 15 MRs per bank achieve 16-bit
//! resolution (§V.B); DEAP-CNN reaches only 4 bits and HolyLight 2 bits per
//! microdisk.

use serde::{Deserialize, Serialize};

use crate::error::{PhotonicsError, Result};
use crate::units::Nanometers;
use crate::wdm::WdmGrid;

/// Inter-channel crosstalk analysis for a bank of MRs on a shared bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelCrosstalkAnalysis {
    channels: Vec<Nanometers>,
    q_factor: f64,
}

impl ChannelCrosstalkAnalysis {
    /// Creates an analysis for explicit channel wavelengths and a shared Q
    /// factor.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if fewer than one channel
    /// is supplied or the Q factor is not strictly positive.
    pub fn new(channels: Vec<Nanometers>, q_factor: f64) -> Result<Self> {
        if channels.is_empty() {
            return Err(PhotonicsError::InvalidParameter {
                name: "channels",
                reason: "crosstalk analysis needs at least one channel".into(),
            });
        }
        if q_factor <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "q_factor",
                reason: format!("Q factor must be positive, got {q_factor}"),
            });
        }
        Ok(Self { channels, q_factor })
    }

    /// Creates an analysis from a WDM grid.
    ///
    /// # Errors
    ///
    /// Same as [`ChannelCrosstalkAnalysis::new`].
    pub fn from_grid(grid: &WdmGrid, q_factor: f64) -> Result<Self> {
        Self::new(grid.channels().to_vec(), q_factor)
    }

    /// Returns the number of channels in the analysis.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Eq. (8): noise coupling coefficient from channel `j` into channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[must_use]
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.channels.len() && j < self.channels.len(),
            "channel index out of bounds"
        );
        if i == j {
            return 1.0;
        }
        let lambda_i = self.channels[i].value();
        let lambda_j = self.channels[j].value();
        let delta = lambda_i / (2.0 * self.q_factor);
        let detuning = lambda_i - lambda_j;
        delta * delta / (detuning * detuning + delta * delta)
    }

    /// Eq. (9): total noise power in channel `i` for unit input power per
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn noise_power(&self, i: usize) -> f64 {
        (0..self.channels.len())
            .filter(|&j| j != i)
            .map(|j| self.coupling(i, j))
            .sum()
    }

    /// The worst (largest) noise power over all channels.
    #[must_use]
    pub fn worst_noise_power(&self) -> f64 {
        (0..self.channels.len())
            .map(|i| self.noise_power(i))
            .fold(0.0, f64::max)
    }

    /// Precomputes the full Eq. (8) coupling matrix so repeated noise-power
    /// queries read coefficients instead of re-deriving Lorentzian tails.
    ///
    /// Every entry is produced by [`ChannelCrosstalkAnalysis::coupling`], so
    /// matrix-backed results are bit-identical to the per-pair path.
    #[must_use]
    pub fn coupling_matrix(&self) -> CouplingMatrix {
        let n = self.channels.len();
        let mut entries = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                entries.push(self.coupling(i, j));
            }
        }
        CouplingMatrix { entries, n }
    }

    /// Eq. (10): number of distinguishable signal levels, `1 / max|P_noise|`.
    ///
    /// Returns `f64::INFINITY` for a single channel (no crosstalk at all).
    #[must_use]
    pub fn resolution_levels(&self) -> f64 {
        resolution_levels_from_noise(self.worst_noise_power())
    }

    /// Achievable resolution in bits, following the paper's reading of
    /// Eq. (10): the value `1 / max|P_noise|` is reported directly as the bit
    /// resolution (clamped to at least one bit and capped at `cap_bits`).
    ///
    /// Under this reading the paper's own numbers are reproduced: the
    /// optimized CrossLight bank (Q ≈ 8000, >1 nm separations, 15 MRs) clears
    /// 16 bits comfortably, DEAP-CNN's dense low-Q channels land near 4 bits,
    /// and a microdisk's broad response near 2 bits.  The paper treats 16
    /// bits as the ceiling of interest, so callers usually pass
    /// `cap_bits = 16`.
    #[must_use]
    pub fn resolution_bits(&self, cap_bits: u32) -> u32 {
        resolution_bits_from_levels(self.resolution_levels(), cap_bits)
    }
}

/// Precomputed Eq. (8) coupling coefficients of one channel bank.
///
/// Row `i` holds `coupling(i, j)` for every `j`, in channel order.  The
/// matrix is not exactly symmetric — `δ` in Eq. (8) depends on the *victim*
/// wavelength `λᵢ` — but it is symmetric in magnitude ordering: for every
/// victim, closer aggressors always couple more strongly.
///
/// Produced by [`ChannelCrosstalkAnalysis::coupling_matrix`].  All
/// aggregation methods reproduce the per-pair implementation bit for bit
/// (same coefficients, same summation order); they only skip the repeated
/// Lorentzian evaluations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CouplingMatrix {
    entries: Vec<f64>,
    n: usize,
}

impl CouplingMatrix {
    /// Returns the number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.n
    }

    /// Precomputed Eq. (8) coefficient from channel `j` into channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[must_use]
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "channel index out of bounds");
        self.entries[i * self.n + j]
    }

    /// Eq. (9) noise power in channel `i`, read from the precomputed row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn noise_power(&self, i: usize) -> f64 {
        assert!(i < self.n, "channel index out of bounds");
        let row = &self.entries[i * self.n..(i + 1) * self.n];
        let mut total = 0.0;
        for (j, &coupling) in row.iter().enumerate() {
            if j != i {
                total += coupling;
            }
        }
        total
    }

    /// Writes the per-channel noise powers into `out` (resized to the channel
    /// count), the workspace variant of calling
    /// [`CouplingMatrix::noise_power`] per channel.  Reusing `out` across
    /// calls makes repeated bank analyses allocation-free.
    pub fn noise_power_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n).map(|i| self.noise_power(i)));
    }

    /// The worst (largest) per-channel noise power.
    #[must_use]
    pub fn worst_noise_power(&self) -> f64 {
        (0..self.n).map(|i| self.noise_power(i)).fold(0.0, f64::max)
    }

    /// Eq. (10) distinguishable levels; see
    /// [`ChannelCrosstalkAnalysis::resolution_levels`].
    #[must_use]
    pub fn resolution_levels(&self) -> f64 {
        resolution_levels_from_noise(self.worst_noise_power())
    }

    /// Achievable resolution in bits; see
    /// [`ChannelCrosstalkAnalysis::resolution_bits`].
    #[must_use]
    pub fn resolution_bits(&self, cap_bits: u32) -> u32 {
        resolution_bits_from_levels(self.resolution_levels(), cap_bits)
    }
}

fn resolution_levels_from_noise(noise: f64) -> f64 {
    if noise <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / noise
    }
}

fn resolution_bits_from_levels(levels: f64, cap_bits: u32) -> u32 {
    if levels.is_infinite() {
        return cap_bits;
    }
    let bits = levels.floor();
    if bits < 1.0 {
        1
    } else {
        (bits as u32).min(cap_bits)
    }
}

/// Resolution achievable by a uniform bank: `mr_count` channels equally spaced
/// by `spacing`, all with quality factor `q_factor`.
///
/// This is the function the CrossLight resolution analysis (§V.B) sweeps, and
/// it sits on the architecture simulator's per-configuration path, so it is
/// allocation-free: the uniform channel grid is generated on the fly instead
/// of materializing a wavelength vector and an analysis object.  Results are
/// bit-identical to [`reference::bank_resolution_bits_naive`] (the original
/// implementation), which the property tests enforce with exact equality.
///
/// # Errors
///
/// Returns [`PhotonicsError::InvalidParameter`] for an empty bank, a
/// non-positive spacing, or a non-positive Q factor.
pub fn bank_resolution_bits(
    mr_count: usize,
    spacing: Nanometers,
    q_factor: f64,
    cap_bits: u32,
) -> Result<u32> {
    if mr_count == 0 {
        return Err(PhotonicsError::InvalidParameter {
            name: "mr_count",
            reason: "bank must contain at least one MR".into(),
        });
    }
    if spacing.value() <= 0.0 {
        return Err(PhotonicsError::InvalidParameter {
            name: "spacing",
            reason: format!("channel spacing must be positive, got {spacing}"),
        });
    }
    if q_factor <= 0.0 {
        return Err(PhotonicsError::InvalidParameter {
            name: "q_factor",
            reason: format!("Q factor must be positive, got {q_factor}"),
        });
    }
    // The same arithmetic as building the channel vector explicitly:
    // λₖ = 1550 + spacing·k (multiply first, then add, exactly as
    // `Nanometers::new(1550.0) + spacing * k as f64` evaluates).
    let spacing_nm = spacing.value();
    let lambda = |k: usize| 1550.0 + spacing_nm * k as f64;
    let mut worst = 0.0f64;
    for i in 0..mr_count {
        let lambda_i = lambda(i);
        let delta = lambda_i / (2.0 * q_factor);
        let delta_sq = delta * delta;
        let mut noise = 0.0;
        for j in 0..mr_count {
            if j == i {
                continue;
            }
            let detuning = lambda_i - lambda(j);
            noise += delta_sq / (detuning * detuning + delta_sq);
        }
        worst = worst.max(noise);
    }
    Ok(resolution_bits_from_levels(
        resolution_levels_from_noise(worst),
        cap_bits,
    ))
}

/// Reference implementations preserved for exact-equality testing (the same
/// pattern as `crosslight_neural::tensor::reference`): the optimized paths
/// above must reproduce these bit for bit.
pub mod reference {
    use super::{ChannelCrosstalkAnalysis, Nanometers, Result};

    /// The original [`super::bank_resolution_bits`]: materializes the uniform
    /// channel grid and a [`ChannelCrosstalkAnalysis`], then walks every
    /// channel pair.
    ///
    /// # Errors
    ///
    /// Same as [`super::bank_resolution_bits`].
    pub fn bank_resolution_bits_naive(
        mr_count: usize,
        spacing: Nanometers,
        q_factor: f64,
        cap_bits: u32,
    ) -> Result<u32> {
        if mr_count == 0 {
            return Err(super::PhotonicsError::InvalidParameter {
                name: "mr_count",
                reason: "bank must contain at least one MR".into(),
            });
        }
        if spacing.value() <= 0.0 {
            return Err(super::PhotonicsError::InvalidParameter {
                name: "spacing",
                reason: format!("channel spacing must be positive, got {spacing}"),
            });
        }
        let channels: Vec<Nanometers> = (0..mr_count)
            .map(|i| Nanometers::new(1550.0) + spacing * i as f64)
            .collect();
        let analysis = ChannelCrosstalkAnalysis::new(channels, q_factor)?;
        Ok(analysis.resolution_bits(cap_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_is_one_on_diagonal_and_small_off_diagonal() {
        let grid = WdmGrid::c_band_grid(15, Nanometers::new(1.2)).expect("fits");
        let analysis = ChannelCrosstalkAnalysis::from_grid(&grid, 8000.0).expect("valid");
        assert!((analysis.coupling(3, 3) - 1.0).abs() < 1e-12);
        let adjacent = analysis.coupling(3, 4);
        let distant = analysis.coupling(0, 14);
        assert!(adjacent < 0.01, "adjacent coupling {adjacent}");
        assert!(distant < adjacent);
    }

    #[test]
    fn paper_operating_point_achieves_16_bits() {
        // §V.B: Q ≈ 8000, FSR 18 nm, >1 nm separations, 15 MRs per bank → 16 bits.
        let bits = bank_resolution_bits(15, Nanometers::new(1.2), 8000.0, 16).expect("valid");
        assert_eq!(bits, 16);
    }

    #[test]
    fn low_q_and_tight_spacing_degrade_resolution() {
        // DEAP-CNN-like conditions: low Q and dense channels → few bits.
        let tight = bank_resolution_bits(15, Nanometers::new(0.3), 2000.0, 16).expect("valid");
        let paper = bank_resolution_bits(15, Nanometers::new(1.2), 8000.0, 16).expect("valid");
        assert!(tight < paper);
        assert!(tight <= 8, "tight-spacing resolution was {tight} bits");
    }

    #[test]
    fn resolution_decreases_with_more_mrs() {
        let few = bank_resolution_bits(5, Nanometers::new(0.4), 8000.0, 24).expect("valid");
        let many = bank_resolution_bits(30, Nanometers::new(0.4), 8000.0, 24).expect("valid");
        assert!(many <= few);
    }

    #[test]
    fn single_channel_is_capped_not_infinite() {
        let bits = bank_resolution_bits(1, Nanometers::new(1.0), 8000.0, 16).expect("valid");
        assert_eq!(bits, 16);
        let analysis =
            ChannelCrosstalkAnalysis::new(vec![Nanometers::new(1550.0)], 8000.0).expect("valid");
        assert!(analysis.resolution_levels().is_infinite());
    }

    #[test]
    fn noise_power_is_worst_for_middle_channels() {
        let grid = WdmGrid::c_band_grid(15, Nanometers::new(1.2)).expect("fits");
        let analysis = ChannelCrosstalkAnalysis::from_grid(&grid, 8000.0).expect("valid");
        let edge = analysis.noise_power(0);
        let middle = analysis.noise_power(7);
        assert!(middle > edge);
        assert!(analysis.worst_noise_power() >= middle);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(ChannelCrosstalkAnalysis::new(vec![], 8000.0).is_err());
        assert!(ChannelCrosstalkAnalysis::new(vec![Nanometers::new(1550.0)], 0.0).is_err());
        assert!(bank_resolution_bits(0, Nanometers::new(1.0), 8000.0, 16).is_err());
        assert!(bank_resolution_bits(5, Nanometers::new(0.0), 8000.0, 16).is_err());
        assert!(bank_resolution_bits(5, Nanometers::new(1.0), -1.0, 16).is_err());
    }

    #[test]
    fn resolution_bits_never_below_one() {
        // Pathologically dense grid still reports at least 1 bit.
        let bits = bank_resolution_bits(30, Nanometers::new(0.01), 500.0, 16).expect("valid");
        assert!(bits >= 1);
    }

    #[test]
    fn matrix_reproduces_the_per_pair_path_exactly() {
        let grid = WdmGrid::c_band_grid(15, Nanometers::new(1.2)).expect("fits");
        let analysis = ChannelCrosstalkAnalysis::from_grid(&grid, 8000.0).expect("valid");
        let matrix = analysis.coupling_matrix();
        assert_eq!(matrix.channel_count(), analysis.channel_count());
        let mut noise = Vec::new();
        matrix.noise_power_into(&mut noise);
        for (i, &noise_i) in noise.iter().enumerate() {
            for j in 0..analysis.channel_count() {
                assert_eq!(matrix.coupling(i, j), analysis.coupling(i, j));
            }
            assert_eq!(matrix.noise_power(i), analysis.noise_power(i));
            assert_eq!(noise_i, analysis.noise_power(i));
        }
        assert_eq!(matrix.worst_noise_power(), analysis.worst_noise_power());
        assert_eq!(matrix.resolution_levels(), analysis.resolution_levels());
        assert_eq!(matrix.resolution_bits(16), analysis.resolution_bits(16));
    }

    #[test]
    fn noise_power_into_reuses_its_buffer() {
        let grid = WdmGrid::c_band_grid(8, Nanometers::new(1.0)).expect("fits");
        let matrix = ChannelCrosstalkAnalysis::from_grid(&grid, 8000.0)
            .expect("valid")
            .coupling_matrix();
        let mut noise = Vec::with_capacity(8);
        matrix.noise_power_into(&mut noise);
        assert_eq!(noise.len(), 8);
        let first = noise.clone();
        matrix.noise_power_into(&mut noise);
        assert_eq!(noise, first);
        assert!(noise.capacity() >= 8);
    }

    #[test]
    fn allocation_free_bank_resolution_matches_the_reference() {
        for &(count, spacing, q) in &[
            (1usize, 1.0, 8000.0),
            (5, 0.4, 8000.0),
            (15, 1.2, 8000.0),
            (15, 0.3, 2000.0),
            (30, 0.01, 500.0),
        ] {
            let fast = bank_resolution_bits(count, Nanometers::new(spacing), q, 16).unwrap();
            let naive =
                reference::bank_resolution_bits_naive(count, Nanometers::new(spacing), q, 16)
                    .unwrap();
            assert_eq!(fast, naive, "count={count} spacing={spacing} q={q}");
        }
        assert!(
            reference::bank_resolution_bits_naive(0, Nanometers::new(1.0), 8000.0, 16).is_err()
        );
    }
}
