//! Optical loss budget.
//!
//! The paper's evaluation (§V.A) enumerates the per-component photonic losses
//! every optical signal accumulates between the laser and the photodetector:
//! waveguide propagation (1 dB/cm), splitters (0.13 dB each), combiners
//! (0.9 dB each), MR through loss (0.02 dB per off-resonance MR passed), MR
//! modulation loss (0.72 dB when a value is imprinted), microdisk loss
//! (1.22 dB), EO tuning loss (6 dB/cm of tuned waveguide) and TO tuning loss
//! (1 dB/cm).  The total loss feeds directly into the laser power model,
//! Eq. (7), so an architecture that forces light past many devices pays for it
//! in laser power.

use serde::{Deserialize, Serialize};

use crate::units::{DecibelLoss, Micrometers};

/// Per-component loss coefficients (paper §V.A values by default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Waveguide propagation loss per centimetre.
    pub propagation_db_per_cm: f64,
    /// Loss of one optical splitter stage.
    pub splitter_db: f64,
    /// Loss of one optical combiner stage.
    pub combiner_db: f64,
    /// Through loss of one off-resonance MR on the bus.
    pub mr_through_db: f64,
    /// Modulation loss of one MR actively imprinting a value.
    pub mr_modulation_db: f64,
    /// Insertion loss of one microdisk (HolyLight devices).
    pub microdisk_db: f64,
    /// Additional loss of electro-optically tuned waveguide, per centimetre.
    pub eo_tuning_db_per_cm: f64,
    /// Additional loss of thermo-optically tuned waveguide, per centimetre.
    pub to_tuning_db_per_cm: f64,
}

impl LossModel {
    /// The loss coefficients used in the paper's evaluation (§V.A).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            propagation_db_per_cm: 1.0,
            splitter_db: 0.13,
            combiner_db: 0.9,
            mr_through_db: 0.02,
            mr_modulation_db: 0.72,
            microdisk_db: 1.22,
            eo_tuning_db_per_cm: 6.0,
            to_tuning_db_per_cm: 1.0,
        }
    }
}

impl Default for LossModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// An itemised optical-loss budget along one laser-to-detector path.
///
/// Build it up with the `add_*` methods and read the total with
/// [`LossBudget::total`].  Each contribution is tracked separately so
/// experiments can report a breakdown.
///
/// # Example
///
/// ```
/// use crosslight_photonics::loss::{LossBudget, LossModel};
/// use crosslight_photonics::units::Micrometers;
///
/// let model = LossModel::paper();
/// let mut budget = LossBudget::new(model);
/// budget.add_propagation(Micrometers::new(2_000.0)); // 2 mm of waveguide
/// budget.add_splitters(2);
/// budget.add_mr_through(14);
/// budget.add_mr_modulation(1);
/// assert!(budget.total().value() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossBudget {
    model: LossModel,
    propagation: DecibelLoss,
    splitters: DecibelLoss,
    combiners: DecibelLoss,
    mr_through: DecibelLoss,
    mr_modulation: DecibelLoss,
    microdisks: DecibelLoss,
    tuning: DecibelLoss,
}

impl LossBudget {
    /// Creates an empty budget using the given loss coefficients.
    #[must_use]
    pub fn new(model: LossModel) -> Self {
        Self {
            model,
            propagation: DecibelLoss::new(0.0),
            splitters: DecibelLoss::new(0.0),
            combiners: DecibelLoss::new(0.0),
            mr_through: DecibelLoss::new(0.0),
            mr_modulation: DecibelLoss::new(0.0),
            microdisks: DecibelLoss::new(0.0),
            tuning: DecibelLoss::new(0.0),
        }
    }

    /// Returns the loss coefficients in use.
    #[must_use]
    pub fn model(&self) -> &LossModel {
        &self.model
    }

    /// Adds waveguide propagation loss over `length` of waveguide.
    pub fn add_propagation(&mut self, length: Micrometers) -> &mut Self {
        self.propagation +=
            DecibelLoss::new(self.model.propagation_db_per_cm * length.to_centimeters());
        self
    }

    /// Adds `count` splitter stages.
    pub fn add_splitters(&mut self, count: usize) -> &mut Self {
        self.splitters += DecibelLoss::new(self.model.splitter_db * count as f64);
        self
    }

    /// Adds `count` combiner stages.
    pub fn add_combiners(&mut self, count: usize) -> &mut Self {
        self.combiners += DecibelLoss::new(self.model.combiner_db * count as f64);
        self
    }

    /// Adds the through loss of passing `count` off-resonance MRs.
    pub fn add_mr_through(&mut self, count: usize) -> &mut Self {
        self.mr_through += DecibelLoss::new(self.model.mr_through_db * count as f64);
        self
    }

    /// Adds the modulation loss of `count` MRs actively imprinting values.
    pub fn add_mr_modulation(&mut self, count: usize) -> &mut Self {
        self.mr_modulation += DecibelLoss::new(self.model.mr_modulation_db * count as f64);
        self
    }

    /// Adds the insertion loss of `count` microdisks (HolyLight path).
    pub fn add_microdisks(&mut self, count: usize) -> &mut Self {
        self.microdisks += DecibelLoss::new(self.model.microdisk_db * count as f64);
        self
    }

    /// Adds electro-optic tuning loss over `length` of tuned waveguide.
    pub fn add_eo_tuning(&mut self, length: Micrometers) -> &mut Self {
        self.tuning += DecibelLoss::new(self.model.eo_tuning_db_per_cm * length.to_centimeters());
        self
    }

    /// Adds thermo-optic tuning loss over `length` of tuned waveguide.
    pub fn add_to_tuning(&mut self, length: Micrometers) -> &mut Self {
        self.tuning += DecibelLoss::new(self.model.to_tuning_db_per_cm * length.to_centimeters());
        self
    }

    /// Total accumulated optical loss.
    #[must_use]
    pub fn total(&self) -> DecibelLoss {
        self.propagation
            + self.splitters
            + self.combiners
            + self.mr_through
            + self.mr_modulation
            + self.microdisks
            + self.tuning
    }

    /// Itemised breakdown of the budget, in the order
    /// (propagation, splitters, combiners, MR through, MR modulation,
    /// microdisks, tuning).
    #[must_use]
    pub fn breakdown(&self) -> LossBreakdown {
        LossBreakdown {
            propagation: self.propagation,
            splitters: self.splitters,
            combiners: self.combiners,
            mr_through: self.mr_through,
            mr_modulation: self.mr_modulation,
            microdisks: self.microdisks,
            tuning: self.tuning,
        }
    }
}

/// Itemised loss contributions of a [`LossBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossBreakdown {
    /// Waveguide propagation loss.
    pub propagation: DecibelLoss,
    /// Splitter loss.
    pub splitters: DecibelLoss,
    /// Combiner loss.
    pub combiners: DecibelLoss,
    /// Off-resonance MR through loss.
    pub mr_through: DecibelLoss,
    /// Active MR modulation loss.
    pub mr_modulation: DecibelLoss,
    /// Microdisk insertion loss.
    pub microdisks: DecibelLoss,
    /// EO/TO tuning loss.
    pub tuning: DecibelLoss,
}

impl LossBreakdown {
    /// Sum of all contributions (equals [`LossBudget::total`]).
    #[must_use]
    pub fn total(&self) -> DecibelLoss {
        self.propagation
            + self.splitters
            + self.combiners
            + self.mr_through
            + self.mr_modulation
            + self.microdisks
            + self.tuning
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_coefficients() {
        let m = LossModel::paper();
        assert!((m.propagation_db_per_cm - 1.0).abs() < 1e-12);
        assert!((m.splitter_db - 0.13).abs() < 1e-12);
        assert!((m.combiner_db - 0.9).abs() < 1e-12);
        assert!((m.mr_through_db - 0.02).abs() < 1e-12);
        assert!((m.mr_modulation_db - 0.72).abs() < 1e-12);
        assert!((m.microdisk_db - 1.22).abs() < 1e-12);
        assert!((m.eo_tuning_db_per_cm - 6.0).abs() < 1e-12);
        assert!((m.to_tuning_db_per_cm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn propagation_loss_scales_with_length() {
        let mut budget = LossBudget::new(LossModel::paper());
        budget.add_propagation(Micrometers::new(10_000.0)); // 1 cm
        assert!((budget.total().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_accumulates_all_components() {
        let mut budget = LossBudget::new(LossModel::paper());
        budget
            .add_propagation(Micrometers::new(5_000.0)) // 0.5 dB
            .add_splitters(4) // 0.52 dB
            .add_combiners(1) // 0.9 dB
            .add_mr_through(14) // 0.28 dB
            .add_mr_modulation(1) // 0.72 dB
            .add_microdisks(0)
            .add_eo_tuning(Micrometers::new(100.0)) // 0.06 dB
            .add_to_tuning(Micrometers::new(100.0)); // 0.01 dB
        let expected = 0.5 + 0.52 + 0.9 + 0.28 + 0.72 + 0.06 + 0.01;
        assert!((budget.total().value() - expected).abs() < 1e-9);
        let breakdown = budget.breakdown();
        assert!((breakdown.total().value() - expected).abs() < 1e-9);
        assert!((breakdown.splitters.value() - 0.52).abs() < 1e-12);
    }

    #[test]
    fn more_mrs_per_arm_increase_loss_monotonically() {
        let loss_for = |mrs: usize| {
            let mut b = LossBudget::new(LossModel::paper());
            b.add_mr_through(mrs.saturating_sub(1)).add_mr_modulation(1);
            b.total().value()
        };
        let mut prev = loss_for(1);
        for mrs in 2..=30 {
            let next = loss_for(mrs);
            assert!(next > prev, "loss must grow with MR count");
            prev = next;
        }
    }

    #[test]
    fn microdisk_path_is_lossier_than_mr_path() {
        // A HolyLight weight (8 microdisks) vs a CrossLight weight (1 MR
        // modulation + 14 through).
        let mut holylight = LossBudget::new(LossModel::paper());
        holylight.add_microdisks(8);
        let mut crosslight = LossBudget::new(LossModel::paper());
        crosslight.add_mr_modulation(1).add_mr_through(14);
        assert!(holylight.total() > crosslight.total());
    }
}
