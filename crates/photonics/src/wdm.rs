//! Wavelength-division-multiplexing (WDM) channel allocation.
//!
//! Noncoherent accelerators imprint each vector element on its own wavelength
//! (paper §III).  All channels must fit inside one free spectral range of the
//! MRs that weight them, and the channel spacing directly controls
//! inter-channel crosstalk and therefore the achievable resolution (§V.B).

use serde::{Deserialize, Serialize};

use crate::error::{PhotonicsError, Result};
use crate::units::Nanometers;

/// Centre of the C band, used as the default first channel.
pub const C_BAND_CENTER_NM: f64 = 1550.0;

/// A uniform WDM grid: `count` channels separated by `spacing`, starting at
/// `first`.
///
/// # Example
///
/// ```
/// use crosslight_photonics::wdm::WdmGrid;
/// use crosslight_photonics::units::Nanometers;
///
/// # fn main() -> Result<(), crosslight_photonics::PhotonicsError> {
/// let grid = WdmGrid::new(Nanometers::new(1550.0), Nanometers::new(1.2), 15,
///                         Nanometers::new(18.0))?;
/// assert_eq!(grid.len(), 15);
/// assert!(grid.span() < grid.free_spectral_range());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WdmGrid {
    first: Nanometers,
    spacing: Nanometers,
    channels: Vec<Nanometers>,
    free_spectral_range: Nanometers,
}

impl WdmGrid {
    /// Creates a grid of `count` channels with the given spacing, checking
    /// that the whole grid fits within one free spectral range.
    ///
    /// # Errors
    ///
    /// * [`PhotonicsError::InvalidParameter`] if `count` is zero or `spacing`
    ///   is not strictly positive.
    /// * [`PhotonicsError::WdmCapacityExceeded`] if the requested channels do
    ///   not fit within `free_spectral_range`.
    pub fn new(
        first: Nanometers,
        spacing: Nanometers,
        count: usize,
        free_spectral_range: Nanometers,
    ) -> Result<Self> {
        if count == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "count",
                reason: "a WDM grid needs at least one channel".into(),
            });
        }
        if spacing.value() <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "spacing",
                reason: format!("channel spacing must be positive, got {spacing}"),
            });
        }
        let capacity = Self::capacity(spacing, free_spectral_range);
        if count > capacity {
            return Err(PhotonicsError::WdmCapacityExceeded {
                requested: count,
                capacity,
            });
        }
        let channels = (0..count).map(|i| first + spacing * i as f64).collect();
        Ok(Self {
            first,
            spacing,
            channels,
            free_spectral_range,
        })
    }

    /// Creates a grid centred on the C band with the paper's 18 nm FSR.
    ///
    /// # Errors
    ///
    /// Same as [`WdmGrid::new`].
    pub fn c_band_grid(count: usize, spacing: Nanometers) -> Result<Self> {
        Self::new(
            Nanometers::new(C_BAND_CENTER_NM),
            spacing,
            count,
            Nanometers::new(crate::mr::OPTIMIZED_FSR_NM),
        )
    }

    /// Maximum number of channels that fit in `fsr` at `spacing`.
    #[must_use]
    pub fn capacity(spacing: Nanometers, fsr: Nanometers) -> usize {
        if spacing.value() <= 0.0 || fsr.value() <= 0.0 {
            return 0;
        }
        // Channels occupy (count-1)*spacing of span; require span < FSR so the
        // first resonance of the next FSR period does not alias onto the grid.
        ((fsr.value() / spacing.value()).floor() as usize).max(1)
    }

    /// Returns the number of channels in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Returns `true` if the grid has no channels (never true for constructed
    /// grids, provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Returns the channel wavelengths in increasing order.
    #[must_use]
    pub fn channels(&self) -> &[Nanometers] {
        &self.channels
    }

    /// Returns the wavelength of channel `index`.
    #[must_use]
    pub fn channel(&self, index: usize) -> Option<Nanometers> {
        self.channels.get(index).copied()
    }

    /// Returns the uniform channel spacing.
    #[must_use]
    pub fn spacing(&self) -> Nanometers {
        self.spacing
    }

    /// Returns the first (shortest) channel wavelength.
    #[must_use]
    pub fn first(&self) -> Nanometers {
        self.first
    }

    /// Returns the free spectral range the grid is constrained to.
    #[must_use]
    pub fn free_spectral_range(&self) -> Nanometers {
        self.free_spectral_range
    }

    /// Returns the spectral span covered by the grid (last − first channel).
    #[must_use]
    pub fn span(&self) -> Nanometers {
        self.spacing * (self.channels.len().saturating_sub(1)) as f64
    }

    /// Iterates over the channel wavelengths.
    pub fn iter(&self) -> std::slice::Iter<'_, Nanometers> {
        self.channels.iter()
    }

    /// Minimum pairwise separation between distinct channels, i.e. the
    /// spacing; exposed for the crosstalk/resolution analysis.
    #[must_use]
    pub fn min_separation(&self) -> Nanometers {
        self.spacing
    }
}

impl<'a> IntoIterator for &'a WdmGrid {
    type Item = &'a Nanometers;
    type IntoIter = std::slice::Iter<'a, Nanometers>;

    fn into_iter(self) -> Self::IntoIter {
        self.channels.iter()
    }
}

/// How many lasers (unique wavelengths) an accelerator needs.
///
/// CrossLight reuses the same wavelengths across VDP arms (§IV.C.3), so its
/// laser count equals the per-arm channel count; accelerators without reuse
/// need one laser per vector element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WavelengthReuse {
    /// Each vector element gets its own dedicated wavelength (prior work).
    PerElement,
    /// Wavelengths are reused across the parallel arms of a VDP unit
    /// (CrossLight).
    AcrossArms,
}

impl WavelengthReuse {
    /// Number of unique laser wavelengths required for a unit processing
    /// vectors of `vector_len` split across arms of `arm_len` elements.
    #[must_use]
    pub fn lasers_required(self, vector_len: usize, arm_len: usize) -> usize {
        match self {
            Self::PerElement => vector_len,
            Self::AcrossArms => arm_len.min(vector_len).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_channels_are_uniform() {
        let grid = WdmGrid::c_band_grid(15, Nanometers::new(1.2)).expect("fits");
        assert_eq!(grid.len(), 15);
        assert!(!grid.is_empty());
        let diffs: Vec<f64> = grid
            .channels()
            .windows(2)
            .map(|w| (w[1] - w[0]).value())
            .collect();
        for d in diffs {
            assert!((d - 1.2).abs() < 1e-9);
        }
        assert!((grid.span().value() - 1.2 * 14.0).abs() < 1e-9);
    }

    #[test]
    fn grid_rejects_overcapacity() {
        // 18 nm FSR at 1.2 nm spacing fits 15 channels; 30 must fail.
        let err = WdmGrid::c_band_grid(30, Nanometers::new(1.2)).unwrap_err();
        assert!(matches!(err, PhotonicsError::WdmCapacityExceeded { .. }));
    }

    #[test]
    fn grid_rejects_invalid_parameters() {
        assert!(WdmGrid::c_band_grid(0, Nanometers::new(1.0)).is_err());
        assert!(WdmGrid::c_band_grid(4, Nanometers::new(0.0)).is_err());
    }

    #[test]
    fn capacity_matches_paper_operating_point() {
        // The paper runs 15 MRs per bank with >1 nm spacing inside an 18 nm
        // FSR; the grid must admit that configuration.
        let cap = WdmGrid::capacity(Nanometers::new(1.2), Nanometers::new(18.0));
        assert!(cap >= 15, "capacity {cap} should admit 15 channels");
    }

    #[test]
    fn channel_accessor_and_iteration() {
        let grid = WdmGrid::c_band_grid(4, Nanometers::new(1.0)).expect("fits");
        assert_eq!(grid.channel(0), Some(Nanometers::new(1550.0)));
        assert_eq!(grid.channel(3), Some(Nanometers::new(1553.0)));
        assert_eq!(grid.channel(4), None);
        assert_eq!(grid.iter().count(), 4);
        assert_eq!((&grid).into_iter().count(), 4);
        assert_eq!(grid.first(), Nanometers::new(1550.0));
        assert_eq!(grid.min_separation(), Nanometers::new(1.0));
    }

    #[test]
    fn wavelength_reuse_reduces_laser_count() {
        let without = WavelengthReuse::PerElement.lasers_required(150, 15);
        let with = WavelengthReuse::AcrossArms.lasers_required(150, 15);
        assert_eq!(without, 150);
        assert_eq!(with, 15);
        // Small vectors never need more lasers than elements.
        assert_eq!(WavelengthReuse::AcrossArms.lasers_required(4, 15), 4);
        assert_eq!(WavelengthReuse::AcrossArms.lasers_required(0, 15), 1);
    }
}
