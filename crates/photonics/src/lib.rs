//! # crosslight-photonics
//!
//! Silicon-photonic device substrate for the CrossLight accelerator
//! reproduction (Sunny et al., DAC 2021).
//!
//! This crate models every photonic and optoelectronic device that the
//! CrossLight architecture (and its baselines DEAP-CNN and HolyLight) is built
//! from:
//!
//! * [`mr`] — all-pass microring resonators (MRs) with Lorentzian through-port
//!   transmission, quality factor, free spectral range and extinction ratio.
//! * [`microdisk`] — microdisk resonators with whispering-gallery-mode loss,
//!   the device HolyLight uses instead of MRs.
//! * [`fpv`] — fabrication-process-variation model reproducing the paper's
//!   device design-space exploration (conventional vs. width-optimized MRs).
//! * [`thermal`] — thermal crosstalk between adjacent MRs as a function of
//!   spacing, plus the bank-level crosstalk matrix consumed by TED tuning.
//! * [`devices`] — the optoelectronic periphery (MZM, VCSEL, photodetector,
//!   TIA, ADC/DAC transceiver) with the latency/power values from Table II.
//! * [`loss`] — the per-component optical loss budget.
//! * [`laser`] — the laser power model of Eq. (7).
//! * [`crosstalk`] — inter-channel crosstalk and achievable bit resolution,
//!   Eqs. (8)–(10).
//! * [`wdm`] — wavelength-division-multiplexing channel allocation.
//! * [`units`] — strongly typed physical quantities used across the workspace.
//!
//! # Example
//!
//! Compute the transmission of a weight value through a tuned MR:
//!
//! ```
//! use crosslight_photonics::mr::{Microring, MrGeometry};
//! use crosslight_photonics::units::Nanometers;
//!
//! let mr = Microring::new(MrGeometry::optimized(), Nanometers::new(1550.0));
//! // Tune the ring so that 50% of the optical power is dropped.
//! let detuning = mr.detuning_for_transmission(0.5).unwrap();
//! let t = mr.through_transmission(mr.resonance() + detuning);
//! assert!((t - 0.5).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crosstalk;
pub mod devices;
pub mod error;
pub mod fpv;
pub mod laser;
pub mod loss;
pub mod microdisk;
pub mod mr;
pub mod spectrum;
pub mod thermal;
pub mod units;
pub mod wdm;

pub use error::PhotonicsError;
pub use mr::{Microring, MrGeometry};
pub use units::{Dbm, DecibelLoss, Micrometers, MilliWatts, Nanometers};
