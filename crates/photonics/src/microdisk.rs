//! Microdisk resonator model (the device HolyLight builds on).
//!
//! HolyLight (Liu et al., DATE 2019) replaces microrings with microdisks to
//! save area and tuning power, operating them in a whispering-gallery mode
//! (WGM).  The paper notes the WGM is inherently lossy due to tunneling-ray
//! attenuation, and that each microdisk only achieves a 2-bit resolution, so
//! HolyLight gangs 8 disks to reach 16 bits.  This module captures exactly the
//! properties the baseline comparison needs: insertion loss, per-device
//! resolution, footprint and tuning behaviour.

use serde::{Deserialize, Serialize};

use crate::units::{DecibelLoss, Micrometers, Nanometers};

/// Per-device insertion loss of a microdisk (paper Table II: 1.22 dB).
pub const MICRODISK_LOSS_DB: f64 = 1.22;

/// Bits of weight resolution a single microdisk can represent (paper §V.B).
pub const MICRODISK_RESOLUTION_BITS: u32 = 2;

/// Number of microdisks HolyLight combines to reach 16-bit weights.
pub const MICRODISKS_PER_WEIGHT: usize = 8;

/// A microdisk resonator operating in a whispering-gallery mode.
///
/// # Example
///
/// ```
/// use crosslight_photonics::microdisk::Microdisk;
///
/// let disk = Microdisk::holylight();
/// // Eight 2-bit disks give HolyLight a combined 16-bit weight.
/// assert_eq!(disk.resolution_bits() * 8, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Microdisk {
    radius: Micrometers,
    resonance: Nanometers,
    insertion_loss: DecibelLoss,
    resolution_bits: u32,
}

impl Microdisk {
    /// Creates a microdisk with explicit parameters.
    #[must_use]
    pub fn new(
        radius: Micrometers,
        resonance: Nanometers,
        insertion_loss: DecibelLoss,
        resolution_bits: u32,
    ) -> Self {
        Self {
            radius,
            resonance,
            insertion_loss,
            resolution_bits,
        }
    }

    /// The microdisk configuration assumed for the HolyLight baseline:
    /// 2.5 µm radius, C-band resonance, the Table II 1.22 dB loss and 2-bit
    /// resolution.
    #[must_use]
    pub fn holylight() -> Self {
        Self {
            radius: Micrometers::new(2.5),
            resonance: Nanometers::new(1550.0),
            insertion_loss: DecibelLoss::new(MICRODISK_LOSS_DB),
            resolution_bits: MICRODISK_RESOLUTION_BITS,
        }
    }

    /// Returns the disk radius.
    #[must_use]
    pub fn radius(&self) -> Micrometers {
        self.radius
    }

    /// Returns the resonant wavelength.
    #[must_use]
    pub fn resonance(&self) -> Nanometers {
        self.resonance
    }

    /// Returns the whispering-gallery insertion loss of the device, which
    /// includes the tunneling-ray attenuation penalty.
    #[must_use]
    pub fn insertion_loss(&self) -> DecibelLoss {
        self.insertion_loss
    }

    /// Returns the weight resolution a single disk can represent, in bits.
    #[must_use]
    pub fn resolution_bits(&self) -> u32 {
        self.resolution_bits
    }

    /// Footprint diameter of the device (smaller than an MR — the reason
    /// HolyLight chose microdisks).
    #[must_use]
    pub fn footprint_diameter(&self) -> Micrometers {
        Micrometers::new(2.0 * self.radius.value())
    }
}

impl Default for Microdisk {
    fn default() -> Self {
        Self::holylight()
    }
}

/// A gang of microdisks combined to represent a single high-resolution weight,
/// as HolyLight does (8 × 2-bit = 16-bit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicrodiskGang {
    disk: Microdisk,
    count: usize,
}

impl MicrodiskGang {
    /// Creates a gang of `count` identical disks.
    #[must_use]
    pub fn new(disk: Microdisk, count: usize) -> Self {
        Self { disk, count }
    }

    /// The HolyLight weight cell: 8 two-bit disks.
    #[must_use]
    pub fn holylight_weight_cell() -> Self {
        Self::new(Microdisk::holylight(), MICRODISKS_PER_WEIGHT)
    }

    /// Returns the number of disks in the gang.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Returns the per-disk model.
    #[must_use]
    pub fn disk(&self) -> &Microdisk {
        &self.disk
    }

    /// Combined weight resolution of the gang, in bits.
    #[must_use]
    pub fn combined_resolution_bits(&self) -> u32 {
        self.disk.resolution_bits * self.count as u32
    }

    /// Total insertion loss of a wavelength traversing every disk in the gang.
    #[must_use]
    pub fn total_insertion_loss(&self) -> DecibelLoss {
        self.disk.insertion_loss * self.count as f64
    }

    /// Total footprint length of the gang along the bus waveguide given a
    /// centre-to-centre pitch.
    #[must_use]
    pub fn bus_length(&self, pitch: Micrometers) -> Micrometers {
        if self.count == 0 {
            return Micrometers::new(0.0);
        }
        Micrometers::new(
            pitch.value() * (self.count - 1) as f64 + self.disk.footprint_diameter().value(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holylight_disk_matches_table_ii() {
        let disk = Microdisk::holylight();
        assert!((disk.insertion_loss().value() - 1.22).abs() < 1e-12);
        assert_eq!(disk.resolution_bits(), 2);
        assert!((disk.footprint_diameter().value() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gang_reaches_sixteen_bits() {
        let gang = MicrodiskGang::holylight_weight_cell();
        assert_eq!(gang.count(), 8);
        assert_eq!(gang.combined_resolution_bits(), 16);
    }

    #[test]
    fn gang_loss_is_much_higher_than_single_mr_through_loss() {
        let gang = MicrodiskGang::holylight_weight_cell();
        let loss = gang.total_insertion_loss();
        assert!((loss.value() - 8.0 * 1.22).abs() < 1e-9);
        // CrossLight's MR through loss is 0.02 dB; the microdisk gang pays
        // orders of magnitude more optical loss per weight.
        assert!(loss.value() > 100.0 * 0.02);
    }

    #[test]
    fn gang_bus_length_scales_with_pitch() {
        let gang = MicrodiskGang::holylight_weight_cell();
        let l = gang.bus_length(Micrometers::new(10.0));
        assert!((l.value() - (70.0 + 5.0)).abs() < 1e-9);
        let empty = MicrodiskGang::new(Microdisk::holylight(), 0);
        assert_eq!(empty.bus_length(Micrometers::new(10.0)).value(), 0.0);
    }

    #[test]
    fn microdisk_is_smaller_than_microring() {
        use crate::mr::MrGeometry;
        let disk = Microdisk::holylight();
        let mr = MrGeometry::optimized();
        assert!(disk.footprint_diameter().value() < mr.footprint_diameter().value());
    }
}
