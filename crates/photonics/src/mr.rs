//! All-pass microring resonator (MR) model.
//!
//! MRs are the fundamental weighting devices of noncoherent photonic
//! accelerators (paper §III): a wavelength carrying an activation value passes
//! an MR tuned so that a fraction of its optical power is dropped, realising a
//! multiplication.  This module models the MR geometry explored in the paper's
//! device-level design-space exploration (§IV.A), its spectral behaviour
//! (Lorentzian through-port transmission, Q factor, FSR, extinction ratio) and
//! the mapping between weight values and resonance detuning.

use serde::{Deserialize, Serialize};

use crate::error::{PhotonicsError, Result};
use crate::spectrum::{Lorentzian, SpectrumSummary};
use crate::units::{DecibelLoss, Micrometers, Nanometers};

/// Default loaded Q factor of the paper's optimized MR design (§V.B).
pub const OPTIMIZED_Q_FACTOR: f64 = 8000.0;
/// Default free spectral range of the paper's optimized MR design (§V.B).
pub const OPTIMIZED_FSR_NM: f64 = 18.0;
/// Q factor assumed for the conventional (non-optimized) MR design.
///
/// The paper states the optimized design improves insertion loss and Q factor;
/// we model the conventional device with a modestly lower Q.
pub const CONVENTIONAL_Q_FACTOR: f64 = 5000.0;
/// FSR assumed for the conventional MR design.
pub const CONVENTIONAL_FSR_NM: f64 = 18.0;

/// Physical geometry of a microring resonator.
///
/// Only the parameters that matter to the paper's analysis are captured: the
/// input (bus) and ring waveguide widths — which drive FPV resilience — plus
/// the ring radius and coupling gap that set the footprint and FSR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MrGeometry {
    /// Width of the input (bus) waveguide.
    pub input_waveguide_width: Nanometers,
    /// Width of the ring waveguide.
    pub ring_waveguide_width: Nanometers,
    /// Ring radius.
    pub radius: Micrometers,
    /// Coupling gap between bus and ring.
    pub gap: Nanometers,
    /// Waveguide thickness.
    pub thickness: Nanometers,
}

impl MrGeometry {
    /// The paper's FPV-optimized design: 400 nm input waveguide and 800 nm
    /// ring waveguide (§IV.A), which cuts FPV-induced resonance drift from
    /// ~7.1 nm to ~2.1 nm.
    #[must_use]
    pub fn optimized() -> Self {
        Self {
            input_waveguide_width: Nanometers::new(400.0),
            ring_waveguide_width: Nanometers::new(800.0),
            radius: Micrometers::new(5.0),
            gap: Nanometers::new(200.0),
            thickness: Nanometers::new(220.0),
        }
    }

    /// A conventional single-mode design with 500 nm waveguides everywhere,
    /// representative of prior photonic accelerators.
    #[must_use]
    pub fn conventional() -> Self {
        Self {
            input_waveguide_width: Nanometers::new(500.0),
            ring_waveguide_width: Nanometers::new(500.0),
            radius: Micrometers::new(5.0),
            gap: Nanometers::new(200.0),
            thickness: Nanometers::new(220.0),
        }
    }

    /// Returns `true` when this geometry matches the paper's FPV-optimized
    /// width combination (400 nm bus / 800 nm ring).
    #[must_use]
    pub fn is_width_optimized(&self) -> bool {
        (self.input_waveguide_width.value() - 400.0).abs() < 1.0
            && (self.ring_waveguide_width.value() - 800.0).abs() < 1.0
    }

    /// Approximate footprint diameter of the device including the coupling
    /// region, used by the area model.
    #[must_use]
    pub fn footprint_diameter(&self) -> Micrometers {
        Micrometers::new(2.0 * self.radius.value() + 2.0 * self.gap.to_micrometers().value())
    }
}

impl Default for MrGeometry {
    fn default() -> Self {
        Self::optimized()
    }
}

/// Spectral design parameters of an MR, independent of its geometry details.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MrSpectral {
    /// Loaded quality factor.
    pub q_factor: f64,
    /// Free spectral range.
    pub free_spectral_range: Nanometers,
    /// Extinction ratio in dB (how deeply the through port is suppressed at
    /// resonance).
    pub extinction_ratio_db: f64,
    /// Through (insertion) loss experienced by off-resonance wavelengths.
    pub through_loss: DecibelLoss,
}

impl MrSpectral {
    /// Spectral parameters of the paper's optimized MR design.
    #[must_use]
    pub fn optimized() -> Self {
        Self {
            q_factor: OPTIMIZED_Q_FACTOR,
            free_spectral_range: Nanometers::new(OPTIMIZED_FSR_NM),
            extinction_ratio_db: 25.0,
            through_loss: DecibelLoss::new(0.02),
        }
    }

    /// Spectral parameters assumed for the conventional MR design.
    #[must_use]
    pub fn conventional() -> Self {
        Self {
            q_factor: CONVENTIONAL_Q_FACTOR,
            free_spectral_range: Nanometers::new(CONVENTIONAL_FSR_NM),
            extinction_ratio_db: 20.0,
            through_loss: DecibelLoss::new(0.02),
        }
    }
}

/// An all-pass microring resonator.
///
/// # Example
///
/// ```
/// use crosslight_photonics::mr::{Microring, MrGeometry};
/// use crosslight_photonics::units::Nanometers;
///
/// # fn main() -> Result<(), crosslight_photonics::PhotonicsError> {
/// let mr = Microring::new(MrGeometry::optimized(), Nanometers::new(1550.0));
/// // Imprint a weight of 0.8: the through port should transmit 80% of power.
/// let detuning = mr.detuning_for_transmission(0.8)?;
/// let t = mr.through_transmission(mr.resonance() + detuning);
/// assert!((t - 0.8).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Microring {
    geometry: MrGeometry,
    spectral: MrSpectral,
    resonance: Nanometers,
}

impl Microring {
    /// Creates an MR with spectral parameters inferred from the geometry
    /// (optimized widths ⇒ optimized spectral parameters).
    #[must_use]
    pub fn new(geometry: MrGeometry, resonance: Nanometers) -> Self {
        let spectral = if geometry.is_width_optimized() {
            MrSpectral::optimized()
        } else {
            MrSpectral::conventional()
        };
        Self {
            geometry,
            spectral,
            resonance,
        }
    }

    /// Creates an MR with explicit spectral parameters.
    #[must_use]
    pub fn with_spectral(
        geometry: MrGeometry,
        spectral: MrSpectral,
        resonance: Nanometers,
    ) -> Self {
        Self {
            geometry,
            spectral,
            resonance,
        }
    }

    /// Returns the device geometry.
    #[must_use]
    pub fn geometry(&self) -> &MrGeometry {
        &self.geometry
    }

    /// Returns the spectral parameters.
    #[must_use]
    pub fn spectral(&self) -> &MrSpectral {
        &self.spectral
    }

    /// Returns the current resonant wavelength.
    #[must_use]
    pub fn resonance(&self) -> Nanometers {
        self.resonance
    }

    /// Returns the loaded quality factor.
    #[must_use]
    pub fn q_factor(&self) -> f64 {
        self.spectral.q_factor
    }

    /// Returns the free spectral range.
    #[must_use]
    pub fn free_spectral_range(&self) -> Nanometers {
        self.spectral.free_spectral_range
    }

    /// Returns the Lorentzian lineshape of the drop response at the current
    /// resonance.
    #[must_use]
    pub fn lineshape(&self) -> Lorentzian {
        Lorentzian::from_q_factor(self.resonance, self.spectral.q_factor)
    }

    /// Returns the minimum through-port transmission, reached exactly on
    /// resonance, as set by the extinction ratio.
    #[must_use]
    pub fn min_transmission(&self) -> f64 {
        DecibelLoss::new(self.spectral.extinction_ratio_db).to_linear_transmission()
    }

    /// Through-port power transmission for light at `wavelength`.
    ///
    /// Off resonance the transmission approaches 1 (ignoring the small
    /// broadband through loss, which is accounted for separately in the loss
    /// budget); on resonance it drops to the extinction floor.
    #[must_use]
    pub fn through_transmission(&self, wavelength: Nanometers) -> f64 {
        let floor = self.min_transmission();
        let drop = self.lineshape().response(wavelength);
        // Linear interpolation between the floor (full drop) and unity.
        1.0 - (1.0 - floor) * drop
    }

    /// Returns the resonance detuning needed for the through port to transmit
    /// `transmission` of the incoming power.
    ///
    /// This is how a weight value is imprinted: the tuning circuit shifts the
    /// resonance by the returned amount relative to the carrier wavelength.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::TransmissionOutOfRange`] if `transmission`
    /// lies outside the achievable `[min_transmission, 1]` interval.
    pub fn detuning_for_transmission(&self, transmission: f64) -> Result<Nanometers> {
        let floor = self.min_transmission();
        if !(floor..=1.0).contains(&transmission) {
            return Err(PhotonicsError::TransmissionOutOfRange {
                requested: transmission,
                min: floor,
                max: 1.0,
            });
        }
        let drop = (1.0 - transmission) / (1.0 - floor);
        if drop <= 0.0 {
            // transmission == 1.0 exactly: park far away (half an FSR).
            return Ok(self.spectral.free_spectral_range * 0.5);
        }
        let detuning = self
            .lineshape()
            .detuning_for_response(drop)
            .expect("drop is in (0, 1] by construction");
        Ok(detuning)
    }

    /// Applies a resonance shift (e.g. from process variation, thermal drift
    /// or deliberate tuning), returning the shifted device.
    #[must_use]
    pub fn with_resonance_shift(self, shift: Nanometers) -> Self {
        Self {
            resonance: self.resonance + shift,
            ..self
        }
    }

    /// Summarises the through-port spectrum (paper Fig. 2).
    #[must_use]
    pub fn spectrum_summary(&self) -> SpectrumSummary {
        SpectrumSummary {
            resonance: self.resonance,
            free_spectral_range: self.spectral.free_spectral_range,
            extinction_ratio_db: self.spectral.extinction_ratio_db,
            bandwidth_3db: self.lineshape().bandwidth_3db(),
            q_factor: self.spectral.q_factor,
        }
    }
}

/// A bank (group) of MRs sharing one bus waveguide, each tuned to a distinct
/// WDM channel (paper §III, Fig. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrBank {
    rings: Vec<Microring>,
    spacing: Micrometers,
}

impl MrBank {
    /// Creates a bank of `count` identical MRs with resonances assigned to the
    /// provided channel wavelengths and a uniform centre-to-centre spacing.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if `channels` is empty or
    /// the spacing is not strictly positive.
    pub fn uniform(
        geometry: MrGeometry,
        channels: &[Nanometers],
        spacing: Micrometers,
    ) -> Result<Self> {
        if channels.is_empty() {
            return Err(PhotonicsError::InvalidParameter {
                name: "channels",
                reason: "an MR bank needs at least one channel".into(),
            });
        }
        if spacing.value() <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "spacing",
                reason: format!("spacing must be positive, got {spacing}"),
            });
        }
        let rings = channels
            .iter()
            .map(|&wl| Microring::new(geometry, wl))
            .collect();
        Ok(Self { rings, spacing })
    }

    /// Returns the number of MRs in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Returns `true` if the bank contains no rings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// Returns the centre-to-centre spacing between adjacent MRs.
    #[must_use]
    pub fn spacing(&self) -> Micrometers {
        self.spacing
    }

    /// Returns the rings in the bank.
    #[must_use]
    pub fn rings(&self) -> &[Microring] {
        &self.rings
    }

    /// Iterates over the rings in the bank.
    pub fn iter(&self) -> std::slice::Iter<'_, Microring> {
        self.rings.iter()
    }

    /// Physical length of bus waveguide occupied by the bank.
    #[must_use]
    pub fn waveguide_length(&self) -> Micrometers {
        if self.rings.is_empty() {
            return Micrometers::new(0.0);
        }
        // (n-1) gaps plus one device footprint at each end.
        let gaps = (self.rings.len().saturating_sub(1)) as f64;
        let footprint = self.rings[0].geometry().footprint_diameter();
        Micrometers::new(gaps * self.spacing.value() + footprint.value())
    }

    /// Pairwise centre-to-centre distance between ring `i` and ring `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[must_use]
    pub fn distance_between(&self, i: usize, j: usize) -> Micrometers {
        assert!(
            i < self.rings.len() && j < self.rings.len(),
            "index out of bounds"
        );
        Micrometers::new(self.spacing.value() * (i as f64 - j as f64).abs())
    }
}

impl<'a> IntoIterator for &'a MrBank {
    type Item = &'a Microring;
    type IntoIter = std::slice::Iter<'a, Microring>;

    fn into_iter(self) -> Self::IntoIter {
        self.rings.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wdm::WdmGrid;

    fn mr() -> Microring {
        Microring::new(MrGeometry::optimized(), Nanometers::new(1550.0))
    }

    #[test]
    fn optimized_geometry_maps_to_optimized_spectral() {
        let ring = mr();
        assert!((ring.q_factor() - OPTIMIZED_Q_FACTOR).abs() < 1e-9);
        assert!((ring.free_spectral_range().value() - OPTIMIZED_FSR_NM).abs() < 1e-9);
        let conv = Microring::new(MrGeometry::conventional(), Nanometers::new(1550.0));
        assert!((conv.q_factor() - CONVENTIONAL_Q_FACTOR).abs() < 1e-9);
    }

    #[test]
    fn transmission_is_low_on_resonance_high_off_resonance() {
        let ring = mr();
        let on = ring.through_transmission(ring.resonance());
        let off = ring.through_transmission(ring.resonance() + Nanometers::new(5.0));
        assert!(
            on < 0.01,
            "on-resonance transmission should be near the extinction floor"
        );
        assert!(
            off > 0.99,
            "far-off-resonance transmission should be near unity"
        );
    }

    #[test]
    fn weight_imprinting_example_from_paper() {
        // Paper §III example: activation 0.8 weighted by 0.5 → 0.4 at the
        // through port.
        let ring = mr();
        let detuning = ring
            .detuning_for_transmission(0.5)
            .expect("0.5 is achievable");
        let carrier = ring.resonance() + detuning;
        let weighted = 0.8 * ring.through_transmission(carrier);
        assert!((weighted - 0.4).abs() < 1e-9);
    }

    #[test]
    fn detuning_for_transmission_round_trips() {
        let ring = mr();
        for t in [0.05, 0.25, 0.5, 0.75, 0.99] {
            let detuning = ring.detuning_for_transmission(t).expect("achievable");
            let got = ring.through_transmission(ring.resonance() + detuning);
            assert!((got - t).abs() < 1e-6, "target {t} got {got}");
        }
        // Full transmission parks the resonance half an FSR away; the residual
        // Lorentzian tail keeps it from being exactly 1.
        let detuning = ring.detuning_for_transmission(1.0).expect("achievable");
        assert!((detuning.value() - ring.free_spectral_range().value() / 2.0).abs() < 1e-9);
        let got = ring.through_transmission(ring.resonance() + detuning);
        assert!(got > 0.999, "target 1.0 got {got}");
    }

    #[test]
    fn detuning_for_transmission_rejects_out_of_range() {
        let ring = mr();
        assert!(matches!(
            ring.detuning_for_transmission(-0.1),
            Err(PhotonicsError::TransmissionOutOfRange { .. })
        ));
        assert!(matches!(
            ring.detuning_for_transmission(1.2),
            Err(PhotonicsError::TransmissionOutOfRange { .. })
        ));
        // Below the extinction floor is also unreachable.
        assert!(ring.detuning_for_transmission(1e-6).is_err());
    }

    #[test]
    fn resonance_shift_moves_notch() {
        let ring = mr();
        let shifted = ring.with_resonance_shift(Nanometers::new(0.5));
        assert!((shifted.resonance().value() - 1550.5).abs() < 1e-12);
        // The original carrier is now off the shifted resonance.
        assert!(shifted.through_transmission(Nanometers::new(1550.0)) > ring.min_transmission());
    }

    #[test]
    fn spectrum_summary_is_consistent() {
        let ring = mr();
        let summary = ring.spectrum_summary();
        assert!((summary.q_factor - ring.q_factor()).abs() < 1e-12);
        assert!((summary.bandwidth_3db.value() - 1550.0 / 8000.0).abs() < 1e-9);
        assert!(summary.finesse() > 50.0);
    }

    #[test]
    fn bank_layout_lengths() {
        let grid = WdmGrid::c_band_grid(10, Nanometers::new(1.2)).expect("grid fits");
        let bank = MrBank::uniform(
            MrGeometry::optimized(),
            grid.channels(),
            Micrometers::new(5.0),
        )
        .expect("valid bank");
        assert_eq!(bank.len(), 10);
        assert!(!bank.is_empty());
        // 9 gaps of 5 µm plus a footprint of ~10.4 µm.
        assert!(bank.waveguide_length().value() > 45.0);
        assert!((bank.distance_between(0, 9).value() - 45.0).abs() < 1e-9);
        assert!((bank.distance_between(3, 1).value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bank_rejects_empty_or_invalid_spacing() {
        assert!(MrBank::uniform(MrGeometry::optimized(), &[], Micrometers::new(5.0)).is_err());
        assert!(MrBank::uniform(
            MrGeometry::optimized(),
            &[Nanometers::new(1550.0)],
            Micrometers::new(0.0)
        )
        .is_err());
    }

    #[test]
    fn bank_iteration_yields_all_rings() {
        let grid = WdmGrid::c_band_grid(4, Nanometers::new(1.0)).expect("grid fits");
        let bank = MrBank::uniform(
            MrGeometry::optimized(),
            grid.channels(),
            Micrometers::new(5.0),
        )
        .expect("valid bank");
        assert_eq!(bank.iter().count(), 4);
        assert_eq!((&bank).into_iter().count(), 4);
    }
}
