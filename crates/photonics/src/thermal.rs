//! Thermal crosstalk between microring resonators.
//!
//! Thermo-optic tuning works by heating an MR with a microheater; that heat
//! diffuses laterally and perturbs the phase (and hence resonance) of
//! neighbouring MRs.  The paper characterises this with a *phase crosstalk
//! ratio* — the fraction of a heater's induced phase shift that leaks into an
//! adjacent device — measured with a commercial 3-D heat-transport solver
//! (Lumerical HEAT) on the fabricated MRs (Fig. 4, orange line).
//!
//! Here the solver is replaced by the standard exponential-decay model of
//! lateral thermal coupling in SOI (also observed in De et al., IEEE Access
//! 2020): `ratio(d) = exp(−d / d₀)` with a decay length calibrated so the
//! curve matches the paper's Fig. 4 trend (near-total coupling below ~2 µm,
//! a few percent at 10 µm, negligible beyond ~20 µm).
//!
//! The module also builds the **crosstalk matrix** of an MR bank, which is
//! exactly the object the TED tuning method (crate `crosslight-tuning`)
//! diagonalises to cancel crosstalk collectively.

use serde::{Deserialize, Serialize};

use crate::error::{PhotonicsError, Result};
use crate::units::{Micrometers, Radians};

/// Default lateral thermal decay length in SOI used by the reproduction.
///
/// Calibrated so the phase-crosstalk ratio is ≈29% at 5 µm spacing (the
/// paper's chosen operating point) and <1% beyond ~19 µm, matching the Fig. 4
/// exponential trend.
pub const DEFAULT_DECAY_LENGTH_UM: f64 = 4.0;

/// Spacing traditionally required to avoid thermal crosstalk without active
/// cancellation (paper §IV.A: 120–200 µm).
pub const NAIVE_SAFE_SPACING_UM: f64 = 120.0;

/// Exponential model of the phase-crosstalk ratio between two MRs as a
/// function of their centre-to-centre distance.
///
/// # Example
///
/// ```
/// use crosslight_photonics::thermal::ThermalCrosstalkModel;
/// use crosslight_photonics::units::Micrometers;
///
/// let model = ThermalCrosstalkModel::default();
/// let near = model.phase_crosstalk_ratio(Micrometers::new(2.0));
/// let far = model.phase_crosstalk_ratio(Micrometers::new(20.0));
/// assert!(near > 0.5 && far < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalCrosstalkModel {
    decay_length: Micrometers,
}

impl ThermalCrosstalkModel {
    /// Creates a model with an explicit decay length.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the decay length is not
    /// strictly positive.
    pub fn new(decay_length: Micrometers) -> Result<Self> {
        if decay_length.value() <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "decay_length",
                reason: format!("decay length must be positive, got {decay_length}"),
            });
        }
        Ok(Self { decay_length })
    }

    /// Returns the calibrated decay length.
    #[must_use]
    pub fn decay_length(&self) -> Micrometers {
        self.decay_length
    }

    /// Phase-crosstalk ratio between two MRs separated by `distance`
    /// (1.0 at zero distance, decaying exponentially).
    #[must_use]
    pub fn phase_crosstalk_ratio(&self, distance: Micrometers) -> f64 {
        let d = distance.value().max(0.0);
        (-d / self.decay_length.value()).exp()
    }

    /// Crosstalk matrix `C` for a bank of `count` equally spaced MRs:
    /// `C[i][j] = ratio(|i−j| · spacing)`, with unit diagonal.
    ///
    /// This symmetric matrix maps the vector of heater-induced phase shifts to
    /// the vector of phases actually experienced by each MR; TED inverts it in
    /// its eigenbasis.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if `count` is zero or the
    /// spacing is not strictly positive.
    pub fn crosstalk_matrix(&self, count: usize, spacing: Micrometers) -> Result<CrosstalkMatrix> {
        if count == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "count",
                reason: "a crosstalk matrix needs at least one MR".into(),
            });
        }
        if spacing.value() <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "spacing",
                reason: format!("spacing must be positive, got {spacing}"),
            });
        }
        let mut data = vec![0.0; count * count];
        for i in 0..count {
            for j in 0..count {
                let distance = Micrometers::new(spacing.value() * (i as f64 - j as f64).abs());
                data[i * count + j] = self.phase_crosstalk_ratio(distance);
            }
        }
        Ok(CrosstalkMatrix { size: count, data })
    }
}

impl Default for ThermalCrosstalkModel {
    fn default() -> Self {
        Self {
            decay_length: Micrometers::new(DEFAULT_DECAY_LENGTH_UM),
        }
    }
}

/// Symmetric matrix of pairwise phase-crosstalk ratios within an MR bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrosstalkMatrix {
    size: usize,
    data: Vec<f64>,
}

impl CrosstalkMatrix {
    /// Creates a matrix directly from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if `data.len() != size²`
    /// or the matrix is not symmetric within 1e-9.
    pub fn from_raw(size: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != size * size {
            return Err(PhotonicsError::InvalidParameter {
                name: "data",
                reason: format!("expected {} entries, got {}", size * size, data.len()),
            });
        }
        for i in 0..size {
            for j in 0..i {
                if (data[i * size + j] - data[j * size + i]).abs() > 1e-9 {
                    return Err(PhotonicsError::InvalidParameter {
                        name: "data",
                        reason: format!("matrix is not symmetric at ({i}, {j})"),
                    });
                }
            }
        }
        Ok(Self { size, data })
    }

    /// Returns the matrix dimension (number of MRs in the bank).
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Returns the `(i, j)` entry.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.size && j < self.size, "index out of bounds");
        self.data[i * self.size + j]
    }

    /// Returns the underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Multiplies the matrix by a phase vector: given the heater-applied
    /// phases, returns the phases each MR actually experiences.
    ///
    /// # Panics
    ///
    /// Panics if `applied.len() != size`.
    #[must_use]
    pub fn propagate(&self, applied: &[Radians]) -> Vec<Radians> {
        assert_eq!(applied.len(), self.size, "phase vector length mismatch");
        (0..self.size)
            .map(|i| {
                let sum: f64 = (0..self.size)
                    .map(|j| self.get(i, j) * applied[j].value())
                    .sum();
                Radians::new(sum)
            })
            .collect()
    }

    /// Total off-diagonal crosstalk seen by MR `i` (the sum of its row minus
    /// the diagonal), a scalar measure of how much its neighbours disturb it.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn row_crosstalk(&self, i: usize) -> f64 {
        assert!(i < self.size, "index out of bounds");
        (0..self.size)
            .filter(|&j| j != i)
            .map(|j| self.get(i, j))
            .sum()
    }

    /// Largest row crosstalk over the whole bank (worst-disturbed MR).
    #[must_use]
    pub fn max_row_crosstalk(&self) -> f64 {
        (0..self.size)
            .map(|i| self.row_crosstalk(i))
            .fold(0.0, f64::max)
    }
}

/// A thermo-optic microheater characterisation: how much heater power produces
/// how much phase shift / resonance shift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Microheater {
    /// Electrical power required to shift the resonance by one full FSR
    /// (equivalently, to produce a 2π phase shift).  Paper Table II:
    /// 27.5 mW/FSR for TO tuning.
    pub power_per_fsr_mw: f64,
}

impl Microheater {
    /// The paper's Table II thermo-optic heater (27.5 mW per FSR).
    #[must_use]
    pub fn table_ii() -> Self {
        Self {
            power_per_fsr_mw: 27.5,
        }
    }

    /// Heater power needed to produce `phase` of thermal phase shift.
    #[must_use]
    pub fn power_for_phase(&self, phase: Radians) -> f64 {
        self.power_per_fsr_mw * (phase.value().abs() / std::f64::consts::TAU)
    }

    /// Heater power needed to shift resonance by `shift_nm` given the device
    /// FSR in nanometres.
    #[must_use]
    pub fn power_for_shift(&self, shift_nm: f64, fsr_nm: f64) -> f64 {
        self.power_per_fsr_mw * (shift_nm.abs() / fsr_nm)
    }
}

impl Default for Microheater {
    fn default() -> Self {
        Self::table_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosstalk_decays_exponentially_with_distance() {
        let model = ThermalCrosstalkModel::default();
        let d1 = model.phase_crosstalk_ratio(Micrometers::new(1.0));
        let d5 = model.phase_crosstalk_ratio(Micrometers::new(5.0));
        let d10 = model.phase_crosstalk_ratio(Micrometers::new(10.0));
        let d20 = model.phase_crosstalk_ratio(Micrometers::new(20.0));
        assert!(d1 > d5 && d5 > d10 && d10 > d20);
        // Exponential: ratio(2d) == ratio(d)^2.
        assert!((d10 - d5 * d5).abs() < 1e-12);
        // Calibration targets.
        assert!(d5 > 0.2 && d5 < 0.4, "5 um ratio {d5}");
        assert!(d20 < 0.01, "20 um ratio {d20}");
    }

    #[test]
    fn crosstalk_at_zero_distance_is_unity() {
        let model = ThermalCrosstalkModel::default();
        assert!((model.phase_crosstalk_ratio(Micrometers::new(0.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn naive_safe_spacing_has_negligible_crosstalk() {
        let model = ThermalCrosstalkModel::default();
        let ratio = model.phase_crosstalk_ratio(Micrometers::new(NAIVE_SAFE_SPACING_UM));
        assert!(ratio < 1e-10);
    }

    #[test]
    fn invalid_decay_length_is_rejected() {
        assert!(ThermalCrosstalkModel::new(Micrometers::new(0.0)).is_err());
        assert!(ThermalCrosstalkModel::new(Micrometers::new(-1.0)).is_err());
    }

    #[test]
    fn crosstalk_matrix_structure() {
        let model = ThermalCrosstalkModel::default();
        let m = model
            .crosstalk_matrix(10, Micrometers::new(5.0))
            .expect("valid matrix");
        assert_eq!(m.size(), 10);
        // Unit diagonal, symmetric, decreasing away from the diagonal.
        for i in 0..10 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
        }
        assert!((m.get(0, 3) - m.get(3, 0)).abs() < 1e-12);
        assert!(m.get(0, 1) > m.get(0, 2));
        // Middle MRs see the most total crosstalk.
        assert!(m.row_crosstalk(5) > m.row_crosstalk(0));
        assert!(m.max_row_crosstalk() >= m.row_crosstalk(0));
    }

    #[test]
    fn crosstalk_matrix_rejects_bad_inputs() {
        let model = ThermalCrosstalkModel::default();
        assert!(model.crosstalk_matrix(0, Micrometers::new(5.0)).is_err());
        assert!(model.crosstalk_matrix(4, Micrometers::new(-1.0)).is_err());
        assert!(CrosstalkMatrix::from_raw(2, vec![1.0, 0.5, 0.4, 1.0]).is_err());
        assert!(CrosstalkMatrix::from_raw(2, vec![1.0, 0.5, 0.5]).is_err());
        assert!(CrosstalkMatrix::from_raw(2, vec![1.0, 0.5, 0.5, 1.0]).is_ok());
    }

    #[test]
    fn propagate_applies_neighbour_leakage() {
        let model = ThermalCrosstalkModel::default();
        let m = model
            .crosstalk_matrix(3, Micrometers::new(5.0))
            .expect("valid matrix");
        // Heat only the middle ring by 1 rad: neighbours see the 5 µm ratio.
        let phases = m.propagate(&[Radians::new(0.0), Radians::new(1.0), Radians::new(0.0)]);
        let ratio = model.phase_crosstalk_ratio(Micrometers::new(5.0));
        assert!((phases[1].value() - 1.0).abs() < 1e-12);
        assert!((phases[0].value() - ratio).abs() < 1e-12);
        assert!((phases[2].value() - ratio).abs() < 1e-12);
    }

    #[test]
    fn heater_power_scales_linearly() {
        let heater = Microheater::table_ii();
        let full = heater.power_for_phase(Radians::full_turn());
        assert!((full - 27.5).abs() < 1e-12);
        let half = heater.power_for_phase(Radians::new(std::f64::consts::PI));
        assert!((half - 13.75).abs() < 1e-12);
        // Shift-based API: 18 nm FSR, 1.8 nm shift → 10% of the FSR power.
        assert!((heater.power_for_shift(1.8, 18.0) - 2.75).abs() < 1e-12);
        assert!((heater.power_for_shift(-1.8, 18.0) - 2.75).abs() < 1e-12);
    }
}
