//! Error types for the photonics substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the photonic device models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhotonicsError {
    /// A requested transmission value is outside the physically achievable
    /// range of the device (e.g. below the extinction floor of an MR).
    TransmissionOutOfRange {
        /// The transmission that was requested.
        requested: f64,
        /// The minimum transmission the device can reach (at resonance).
        min: f64,
        /// The maximum transmission the device can reach (far from resonance).
        max: f64,
    },
    /// A device parameter was invalid (non-positive Q factor, empty bank, …).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// More WDM channels were requested than fit in the free spectral range at
    /// the requested channel spacing.
    WdmCapacityExceeded {
        /// Number of channels requested.
        requested: usize,
        /// Maximum number of channels that fit.
        capacity: usize,
    },
    /// The detector would receive less power than its sensitivity floor.
    InsufficientOpticalPower {
        /// Power arriving at the detector, in dBm.
        received_dbm: f64,
        /// Detector sensitivity, in dBm.
        sensitivity_dbm: f64,
    },
}

impl fmt::Display for PhotonicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TransmissionOutOfRange { requested, min, max } => write!(
                f,
                "requested transmission {requested} outside achievable range [{min}, {max}]"
            ),
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Self::WdmCapacityExceeded { requested, capacity } => write!(
                f,
                "requested {requested} WDM channels but only {capacity} fit in the free spectral range"
            ),
            Self::InsufficientOpticalPower {
                received_dbm,
                sensitivity_dbm,
            } => write!(
                f,
                "detector receives {received_dbm} dBm which is below its {sensitivity_dbm} dBm sensitivity"
            ),
        }
    }
}

impl Error for PhotonicsError {}

/// Convenience result alias for photonics operations.
pub type Result<T> = std::result::Result<T, PhotonicsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_implement_error() {
        let errors: Vec<PhotonicsError> = vec![
            PhotonicsError::TransmissionOutOfRange {
                requested: 1.5,
                min: 0.01,
                max: 1.0,
            },
            PhotonicsError::InvalidParameter {
                name: "q_factor",
                reason: "must be positive".into(),
            },
            PhotonicsError::WdmCapacityExceeded {
                requested: 40,
                capacity: 18,
            },
            PhotonicsError::InsufficientOpticalPower {
                received_dbm: -30.0,
                sensitivity_dbm: -20.0,
            },
        ];
        for e in errors {
            let shown = e.to_string();
            assert!(!shown.is_empty());
            let dynamic: &dyn Error = &e;
            assert!(dynamic.source().is_none());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhotonicsError>();
    }
}
