//! Lorentzian lineshapes and transmission spectra.
//!
//! An all-pass microring resonator produces a Lorentzian-shaped notch at its
//! resonant wavelength when observed at the through port (paper Fig. 2).  The
//! same lineshape governs how much optical power one resonator "sees" from a
//! neighbouring WDM channel, which is the root of inter-channel crosstalk
//! (Eq. (8) of the paper).

use serde::{Deserialize, Serialize};

use crate::units::Nanometers;

/// A Lorentzian lineshape parameterised by its centre and half-width.
///
/// The normalised Lorentzian used throughout the paper is
/// `L(λ) = δ² / ((λ − λ₀)² + δ²)` where `δ` is the half-width at half maximum
/// (equal to half the 3-dB bandwidth, `λ₀ / (2 Q)`).
///
/// # Example
///
/// ```
/// use crosslight_photonics::spectrum::Lorentzian;
/// use crosslight_photonics::units::Nanometers;
///
/// let line = Lorentzian::from_q_factor(Nanometers::new(1550.0), 8000.0);
/// // At the centre the response is exactly 1.
/// assert!((line.response(Nanometers::new(1550.0)) - 1.0).abs() < 1e-12);
/// // One half-width away the response is exactly 1/2.
/// let hwhm = line.half_width();
/// assert!((line.response(Nanometers::new(1550.0) + hwhm) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lorentzian {
    center: Nanometers,
    half_width: Nanometers,
}

impl Lorentzian {
    /// Creates a lineshape from its centre wavelength and half-width at half
    /// maximum.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `half_width` is not strictly positive.
    #[must_use]
    pub fn new(center: Nanometers, half_width: Nanometers) -> Self {
        debug_assert!(half_width.value() > 0.0, "half-width must be positive");
        Self { center, half_width }
    }

    /// Creates a lineshape from the resonator quality factor.
    ///
    /// The paper defines `δ = λᵢ / (2 Q)` as the half-width entering the
    /// crosstalk expression, i.e. half of the 3-dB bandwidth `λ/Q`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `q_factor` is not strictly positive.
    #[must_use]
    pub fn from_q_factor(center: Nanometers, q_factor: f64) -> Self {
        debug_assert!(q_factor > 0.0, "Q factor must be positive");
        Self::new(center, Nanometers::new(center.value() / (2.0 * q_factor)))
    }

    /// Returns the centre wavelength of the lineshape.
    #[must_use]
    pub fn center(&self) -> Nanometers {
        self.center
    }

    /// Returns the half-width at half maximum (δ).
    #[must_use]
    pub fn half_width(&self) -> Nanometers {
        self.half_width
    }

    /// Returns the full 3-dB bandwidth (2δ).
    #[must_use]
    pub fn bandwidth_3db(&self) -> Nanometers {
        self.half_width * 2.0
    }

    /// Evaluates the normalised Lorentzian response at `wavelength`.
    ///
    /// The response is 1 at the centre and decays towards 0 far from it.
    #[must_use]
    pub fn response(&self, wavelength: Nanometers) -> f64 {
        let delta = self.half_width.value();
        let detuning = wavelength.value() - self.center.value();
        delta * delta / (detuning * detuning + delta * delta)
    }

    /// Returns the detuning from the centre at which the response equals
    /// `target`, or `None` if `target` is outside `(0, 1]`.
    ///
    /// The returned detuning is non-negative; by symmetry `±detuning` both
    /// produce the same response.
    #[must_use]
    pub fn detuning_for_response(&self, target: f64) -> Option<Nanometers> {
        if !(target > 0.0 && target <= 1.0) {
            return None;
        }
        let delta = self.half_width.value();
        // target = δ² / (x² + δ²)  ⇒  x = δ sqrt(1/target − 1)
        Some(Nanometers::new(delta * (1.0 / target - 1.0).sqrt()))
    }

    /// Samples the lineshape on `points` uniformly spaced wavelengths spanning
    /// `±span` around the centre, returning `(wavelength, response)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    #[must_use]
    pub fn sample(&self, span: Nanometers, points: usize) -> Vec<(Nanometers, f64)> {
        assert!(points >= 2, "at least two sample points are required");
        let start = self.center.value() - span.value();
        let step = 2.0 * span.value() / (points as f64 - 1.0);
        (0..points)
            .map(|i| {
                let wl = Nanometers::new(start + step * i as f64);
                (wl, self.response(wl))
            })
            .collect()
    }
}

/// Characteristics of a resonator's through-port spectrum (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectrumSummary {
    /// Resonant (centre) wavelength.
    pub resonance: Nanometers,
    /// Free spectral range: spacing between successive resonances.
    pub free_spectral_range: Nanometers,
    /// Extinction ratio in dB: on-resonance suppression relative to
    /// off-resonance transmission.
    pub extinction_ratio_db: f64,
    /// 3-dB bandwidth of the resonance notch.
    pub bandwidth_3db: Nanometers,
    /// Loaded quality factor.
    pub q_factor: f64,
}

impl SpectrumSummary {
    /// Returns the finesse of the resonator, `FSR / bandwidth`.
    #[must_use]
    pub fn finesse(&self) -> f64 {
        self.free_spectral_range.value() / self.bandwidth_3db.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Lorentzian {
        Lorentzian::from_q_factor(Nanometers::new(1550.0), 8000.0)
    }

    #[test]
    fn q_factor_sets_half_width() {
        let l = line();
        // δ = 1550 / (2·8000) ≈ 0.0969 nm
        assert!((l.half_width().value() - 1550.0 / 16000.0).abs() < 1e-12);
        assert!((l.bandwidth_3db().value() - 1550.0 / 8000.0).abs() < 1e-12);
    }

    #[test]
    fn response_is_one_at_center_and_decays() {
        let l = line();
        assert!((l.response(l.center()) - 1.0).abs() < 1e-12);
        let near = l.response(Nanometers::new(1550.2));
        let far = l.response(Nanometers::new(1551.0));
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn response_is_symmetric() {
        let l = line();
        let d = Nanometers::new(0.37);
        let plus = l.response(l.center() + d);
        let minus = l.response(l.center() - d);
        assert!((plus - minus).abs() < 1e-12);
    }

    #[test]
    fn detuning_for_response_inverts_response() {
        let l = line();
        for target in [1.0, 0.9, 0.5, 0.1, 1e-3] {
            let det = l.detuning_for_response(target).expect("valid target");
            let got = l.response(l.center() + det);
            assert!((got - target).abs() < 1e-9, "target {target} got {got}");
        }
    }

    #[test]
    fn detuning_for_response_rejects_invalid_targets() {
        let l = line();
        assert!(l.detuning_for_response(0.0).is_none());
        assert!(l.detuning_for_response(-0.1).is_none());
        assert!(l.detuning_for_response(1.1).is_none());
    }

    #[test]
    fn sampling_spans_requested_range() {
        let l = line();
        let samples = l.sample(Nanometers::new(1.0), 101);
        assert_eq!(samples.len(), 101);
        assert!((samples[0].0.value() - 1549.0).abs() < 1e-9);
        assert!((samples[100].0.value() - 1551.0).abs() < 1e-9);
        // Peak is at the centre sample.
        let max = samples
            .iter()
            .map(|(_, r)| *r)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 1.0).abs() < 1e-9);
    }

    #[test]
    fn finesse_is_fsr_over_bandwidth() {
        let summary = SpectrumSummary {
            resonance: Nanometers::new(1550.0),
            free_spectral_range: Nanometers::new(18.0),
            extinction_ratio_db: 20.0,
            bandwidth_3db: Nanometers::new(0.19375),
            q_factor: 8000.0,
        };
        assert!((summary.finesse() - 18.0 / 0.19375).abs() < 1e-9);
    }
}
