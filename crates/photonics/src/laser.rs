//! Laser power model, Eq. (7) of the paper.
//!
//! The laser must launch enough optical power that, after every photonic loss
//! along the path and after dividing the power among the WDM channels, the
//! photodetector still receives at least its sensitivity floor:
//!
//! ```text
//! P_laser − S_detector ≥ P_photo_loss + 10·log10(N_λ)     [all in dB/dBm]
//! ```
//!
//! The laser power therefore grows linearly (in dB) with the total loss and
//! logarithmically with the number of wavelengths sharing the source.

use serde::{Deserialize, Serialize};

use crate::devices::photodetector_sensitivity;
use crate::error::{PhotonicsError, Result};
use crate::loss::LossBudget;
use crate::units::{Dbm, DecibelLoss, MilliWatts};

/// Wall-plug efficiency of the laser source: electrical power divided into
/// emitted optical power.  Typical integrated/comb laser efficiencies are in
/// the 10–20% range; 20% is used so electrical laser power is 5× the optical
/// requirement.
pub const DEFAULT_WALL_PLUG_EFFICIENCY: f64 = 0.2;

/// Laser power calculator implementing Eq. (7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaserPowerModel {
    detector_sensitivity: Dbm,
    wall_plug_efficiency: f64,
}

impl LaserPowerModel {
    /// Creates a model with an explicit detector sensitivity and laser
    /// wall-plug efficiency.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if the efficiency is not
    /// in `(0, 1]`.
    pub fn new(detector_sensitivity: Dbm, wall_plug_efficiency: f64) -> Result<Self> {
        if !(wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0) {
            return Err(PhotonicsError::InvalidParameter {
                name: "wall_plug_efficiency",
                reason: format!("must be in (0, 1], got {wall_plug_efficiency}"),
            });
        }
        Ok(Self {
            detector_sensitivity,
            wall_plug_efficiency,
        })
    }

    /// The default model: Table II photodetector sensitivity and the default
    /// wall-plug efficiency.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            detector_sensitivity: photodetector_sensitivity(),
            wall_plug_efficiency: DEFAULT_WALL_PLUG_EFFICIENCY,
        }
    }

    /// Returns the detector sensitivity used by the model.
    #[must_use]
    pub fn detector_sensitivity(&self) -> Dbm {
        self.detector_sensitivity
    }

    /// Returns the wall-plug efficiency used to convert optical power into
    /// electrical laser power.
    #[must_use]
    pub fn wall_plug_efficiency(&self) -> f64 {
        self.wall_plug_efficiency
    }

    /// Minimum *optical* laser power (per laser) required by Eq. (7) for a
    /// path with the given total loss and `wavelength_count` WDM channels.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] if `wavelength_count` is
    /// zero.
    pub fn required_optical_power(
        &self,
        path_loss: DecibelLoss,
        wavelength_count: usize,
    ) -> Result<Dbm> {
        if wavelength_count == 0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "wavelength_count",
                reason: "at least one wavelength is required".into(),
            });
        }
        let wdm_penalty = 10.0 * (wavelength_count as f64).log10();
        Ok(Dbm::new(
            self.detector_sensitivity.value() + path_loss.value() + wdm_penalty,
        ))
    }

    /// Minimum optical laser power for a path described by a [`LossBudget`].
    ///
    /// # Errors
    ///
    /// Same as [`LaserPowerModel::required_optical_power`].
    pub fn required_optical_power_for_budget(
        &self,
        budget: &LossBudget,
        wavelength_count: usize,
    ) -> Result<Dbm> {
        self.required_optical_power(budget.total(), wavelength_count)
    }

    /// Electrical power drawn by the laser source to emit the required
    /// optical power, accounting for wall-plug efficiency.
    ///
    /// # Errors
    ///
    /// Same as [`LaserPowerModel::required_optical_power`].
    pub fn required_electrical_power(
        &self,
        path_loss: DecibelLoss,
        wavelength_count: usize,
    ) -> Result<MilliWatts> {
        let optical = self
            .required_optical_power(path_loss, wavelength_count)?
            .to_milliwatts();
        Ok(MilliWatts::new(optical.value() / self.wall_plug_efficiency))
    }

    /// Checks whether a given launched optical power satisfies Eq. (7);
    /// returns the detector margin in dB on success.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InsufficientOpticalPower`] if the detector
    /// would receive less power than its sensitivity.
    pub fn link_margin(
        &self,
        launched: Dbm,
        path_loss: DecibelLoss,
        wavelength_count: usize,
    ) -> Result<f64> {
        let wdm_penalty = 10.0 * (wavelength_count.max(1) as f64).log10();
        let received = launched.value() - path_loss.value() - wdm_penalty;
        let margin = received - self.detector_sensitivity.value();
        if margin < 0.0 {
            return Err(PhotonicsError::InsufficientOpticalPower {
                received_dbm: received,
                sensitivity_dbm: self.detector_sensitivity.value(),
            });
        }
        Ok(margin)
    }
}

impl Default for LaserPowerModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossModel;
    use crate::units::Micrometers;

    #[test]
    fn eq7_zero_loss_single_wavelength_equals_sensitivity() {
        let model = LaserPowerModel::paper();
        let p = model
            .required_optical_power(DecibelLoss::new(0.0), 1)
            .expect("valid");
        assert!((p.value() - model.detector_sensitivity().value()).abs() < 1e-12);
    }

    #[test]
    fn eq7_loss_and_wdm_penalties_add_in_db() {
        let model = LaserPowerModel::paper();
        let p = model
            .required_optical_power(DecibelLoss::new(10.0), 10)
            .expect("valid");
        // −20 dBm sensitivity + 10 dB loss + 10 dB WDM penalty = 0 dBm.
        assert!(p.value().abs() < 1e-12);
    }

    #[test]
    fn laser_power_grows_with_loss_and_channels() {
        let model = LaserPowerModel::paper();
        let base = model
            .required_optical_power(DecibelLoss::new(5.0), 4)
            .expect("valid")
            .value();
        let more_loss = model
            .required_optical_power(DecibelLoss::new(8.0), 4)
            .expect("valid")
            .value();
        let more_channels = model
            .required_optical_power(DecibelLoss::new(5.0), 16)
            .expect("valid")
            .value();
        assert!(more_loss > base);
        assert!(more_channels > base);
        assert!((more_channels - base - 10.0 * 4f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn electrical_power_accounts_for_wall_plug_efficiency() {
        let model = LaserPowerModel::paper();
        let optical = model
            .required_optical_power(DecibelLoss::new(10.0), 10)
            .expect("valid")
            .to_milliwatts();
        let electrical = model
            .required_electrical_power(DecibelLoss::new(10.0), 10)
            .expect("valid");
        assert!(
            (electrical.value() - optical.value() / DEFAULT_WALL_PLUG_EFFICIENCY).abs() < 1e-12
        );
    }

    #[test]
    fn budget_wrapper_matches_direct_call() {
        let model = LaserPowerModel::paper();
        let mut budget = LossBudget::new(LossModel::paper());
        budget
            .add_propagation(Micrometers::new(10_000.0))
            .add_splitters(3)
            .add_mr_modulation(1);
        let from_budget = model
            .required_optical_power_for_budget(&budget, 15)
            .expect("valid");
        let direct = model
            .required_optical_power(budget.total(), 15)
            .expect("valid");
        assert!((from_budget.value() - direct.value()).abs() < 1e-12);
    }

    #[test]
    fn link_margin_detects_insufficient_power() {
        let model = LaserPowerModel::paper();
        // 0 dBm launched over a 15 dB loss with 10 channels → −35 dBm < −20 dBm.
        let err = model
            .link_margin(Dbm::new(0.0), DecibelLoss::new(15.0), 10)
            .unwrap_err();
        assert!(matches!(
            err,
            PhotonicsError::InsufficientOpticalPower { .. }
        ));
        // 10 dBm launched over 5 dB loss, 1 channel → margin 25 dB.
        let margin = model
            .link_margin(Dbm::new(10.0), DecibelLoss::new(5.0), 1)
            .expect("sufficient");
        assert!((margin - 25.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(LaserPowerModel::new(Dbm::new(-20.0), 0.0).is_err());
        assert!(LaserPowerModel::new(Dbm::new(-20.0), 1.5).is_err());
        let model = LaserPowerModel::paper();
        assert!(model
            .required_optical_power(DecibelLoss::new(1.0), 0)
            .is_err());
    }
}
