//! Strongly typed physical quantities.
//!
//! The CrossLight model mixes many numeric domains — wavelengths in
//! nanometres, device spacing in micrometres, losses in dB, powers in mW and
//! dBm, latencies in nano/picoseconds.  Newtypes keep these apart at compile
//! time ([C-NEWTYPE]) while still being cheap `Copy` wrappers around `f64`.
//!
//! All quantity types provide:
//!
//! * a `new` constructor and a `value()` accessor returning the raw `f64`,
//! * arithmetic where it is physically meaningful (`Add`/`Sub` between equal
//!   quantities, `Mul`/`Div` by dimensionless scalars),
//! * conversions to related quantities where unambiguous
//!   (e.g. [`Nanometers::to_micrometers`], [`MilliWatts::to_dbm`]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Implements the shared boilerplate for a scalar physical quantity newtype.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Creates a new quantity from a raw value expressed in the unit
            /// named by the type.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the unit named by the type.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` when the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

quantity!(
    /// A length expressed in nanometres (used for optical wavelengths and
    /// waveguide dimensions).
    Nanometers,
    "nm"
);

quantity!(
    /// A length expressed in micrometres (used for device spacing and chip
    /// layout dimensions).
    Micrometers,
    "um"
);

quantity!(
    /// A length expressed in millimetres (used for chip-scale dimensions).
    Millimeters,
    "mm"
);

quantity!(
    /// An area expressed in square millimetres.
    SquareMillimeters,
    "mm^2"
);

quantity!(
    /// An optical loss (or gain penalty) expressed in decibels.
    DecibelLoss,
    "dB"
);

quantity!(
    /// An absolute optical or electrical power on the decibel-milliwatt scale.
    Dbm,
    "dBm"
);

quantity!(
    /// A power expressed in milliwatts.
    MilliWatts,
    "mW"
);

quantity!(
    /// A power expressed in watts.
    Watts,
    "W"
);

quantity!(
    /// An energy expressed in picojoules.
    Picojoules,
    "pJ"
);

quantity!(
    /// A duration expressed in seconds.
    Seconds,
    "s"
);

quantity!(
    /// A frequency expressed in gigahertz.
    GigaHertz,
    "GHz"
);

quantity!(
    /// A temperature expressed in kelvin.
    Kelvin,
    "K"
);

quantity!(
    /// An optical phase expressed in radians.
    Radians,
    "rad"
);

impl Nanometers {
    /// Converts this length to micrometres.
    #[must_use]
    pub fn to_micrometers(self) -> Micrometers {
        Micrometers::new(self.value() / 1e3)
    }

    /// Converts this length to metres.
    #[must_use]
    pub fn to_meters(self) -> f64 {
        self.value() * 1e-9
    }
}

impl Micrometers {
    /// Converts this length to nanometres.
    #[must_use]
    pub fn to_nanometers(self) -> Nanometers {
        Nanometers::new(self.value() * 1e3)
    }

    /// Converts this length to millimetres.
    #[must_use]
    pub fn to_millimeters(self) -> Millimeters {
        Millimeters::new(self.value() / 1e3)
    }

    /// Converts this length to centimetres (propagation losses are quoted per
    /// centimetre).
    #[must_use]
    pub fn to_centimeters(self) -> f64 {
        self.value() * 1e-4
    }
}

impl Millimeters {
    /// Converts this length to micrometres.
    #[must_use]
    pub fn to_micrometers(self) -> Micrometers {
        Micrometers::new(self.value() * 1e3)
    }

    /// Converts this length to centimetres.
    #[must_use]
    pub fn to_centimeters(self) -> f64 {
        self.value() / 10.0
    }
}

impl SquareMillimeters {
    /// Computes the area of a rectangle given two side lengths.
    #[must_use]
    pub fn from_sides(a: Millimeters, b: Millimeters) -> Self {
        Self::new(a.value() * b.value())
    }
}

impl MilliWatts {
    /// Converts this power to the dBm scale.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the power is not strictly positive; 0 mW has
    /// no dBm representation.
    #[must_use]
    pub fn to_dbm(self) -> Dbm {
        debug_assert!(
            self.value() > 0.0,
            "cannot express non-positive power in dBm"
        );
        Dbm::new(10.0 * self.value().log10())
    }

    /// Converts this power to watts.
    #[must_use]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.value() * 1e-3)
    }

    /// Converts this power to microwatts.
    #[must_use]
    pub fn to_microwatts(self) -> f64 {
        self.value() * 1e3
    }

    /// Creates a power from a value expressed in microwatts.
    #[must_use]
    pub fn from_microwatts(uw: f64) -> Self {
        Self::new(uw * 1e-3)
    }

    /// Creates a power from a value expressed in watts.
    #[must_use]
    pub fn from_watts(w: f64) -> Self {
        Self::new(w * 1e3)
    }
}

impl Watts {
    /// Converts this power to milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts::new(self.value() * 1e3)
    }
}

impl Dbm {
    /// Converts this absolute power level to milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts::new(10f64.powf(self.value() / 10.0))
    }

    /// Adds an optical loss, reducing the power level.
    #[must_use]
    pub fn attenuate(self, loss: DecibelLoss) -> Dbm {
        Dbm::new(self.value() - loss.value())
    }
}

impl DecibelLoss {
    /// Converts this loss to a linear power transmission factor in `(0, 1]`.
    #[must_use]
    pub fn to_linear_transmission(self) -> f64 {
        10f64.powf(-self.value() / 10.0)
    }

    /// Creates a loss from a linear power transmission factor in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `transmission` is not in `(0, 1]`.
    #[must_use]
    pub fn from_linear_transmission(transmission: f64) -> Self {
        debug_assert!(
            transmission > 0.0 && transmission <= 1.0,
            "transmission must be in (0, 1], got {transmission}"
        );
        Self::new(-10.0 * transmission.log10())
    }
}

impl Seconds {
    /// Creates a duration from a value expressed in nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Creates a duration from a value expressed in microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates a duration from a value expressed in picoseconds.
    #[must_use]
    pub fn from_picos(ps: f64) -> Self {
        Self::new(ps * 1e-12)
    }

    /// Returns the duration in nanoseconds.
    #[must_use]
    pub fn to_nanos(self) -> f64 {
        self.value() * 1e9
    }

    /// Returns the duration in microseconds.
    #[must_use]
    pub fn to_micros(self) -> f64 {
        self.value() * 1e6
    }
}

impl GigaHertz {
    /// Returns the period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frequency is not strictly positive.
    #[must_use]
    pub fn period(self) -> Seconds {
        debug_assert!(self.value() > 0.0, "frequency must be positive");
        Seconds::new(1.0 / (self.value() * 1e9))
    }
}

impl Picojoules {
    /// Creates an energy from a power applied for a duration.
    #[must_use]
    pub fn from_power_time(power: MilliWatts, time: Seconds) -> Self {
        // mW * s = mJ; 1 mJ = 1e9 pJ.
        Self::new(power.value() * time.value() * 1e9)
    }

    /// Converts this energy to joules.
    #[must_use]
    pub fn to_joules(self) -> f64 {
        self.value() * 1e-12
    }
}

impl Radians {
    /// The full free-spectral-range phase shift of 2π radians.
    #[must_use]
    pub fn full_turn() -> Self {
        Self::new(std::f64::consts::TAU)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanometer_micrometer_roundtrip() {
        let wl = Nanometers::new(1550.0);
        assert!((wl.to_micrometers().value() - 1.55).abs() < 1e-12);
        assert!((wl.to_micrometers().to_nanometers().value() - 1550.0).abs() < 1e-9);
    }

    #[test]
    fn milliwatt_dbm_roundtrip() {
        let p = MilliWatts::new(2.5);
        let back = p.to_dbm().to_milliwatts();
        assert!((back.value() - 2.5).abs() < 1e-9);
        assert!((MilliWatts::new(1.0).to_dbm().value()).abs() < 1e-12);
    }

    #[test]
    fn dbm_attenuation_halves_power_at_3db() {
        let p = MilliWatts::new(10.0).to_dbm();
        let attenuated = p.attenuate(DecibelLoss::new(3.0103));
        assert!((attenuated.to_milliwatts().value() - 5.0).abs() < 1e-3);
    }

    #[test]
    fn loss_linear_roundtrip() {
        let loss = DecibelLoss::new(0.72);
        let t = loss.to_linear_transmission();
        let back = DecibelLoss::from_linear_transmission(t);
        assert!((back.value() - 0.72).abs() < 1e-12);
        assert!(t < 1.0 && t > 0.8);
    }

    #[test]
    fn quantity_arithmetic() {
        let a = Micrometers::new(5.0);
        let b = Micrometers::new(2.0);
        assert_eq!((a + b).value(), 7.0);
        assert_eq!((a - b).value(), 3.0);
        assert_eq!((a * 2.0).value(), 10.0);
        assert_eq!((a / 2.0).value(), 2.5);
        assert!((a / b - 2.5).abs() < 1e-12);
        assert_eq!((-b).value(), -2.0);
    }

    #[test]
    fn quantity_sum_and_ordering() {
        let total: DecibelLoss = [1.0, 0.5, 0.25].into_iter().map(DecibelLoss::new).sum();
        assert!((total.value() - 1.75).abs() < 1e-12);
        assert!(DecibelLoss::new(1.0) < DecibelLoss::new(2.0));
        assert_eq!(
            DecibelLoss::new(1.0).max(DecibelLoss::new(2.0)),
            DecibelLoss::new(2.0)
        );
    }

    #[test]
    fn energy_from_power_and_time() {
        // 1 mW for 1 ns = 1 pJ.
        let e = Picojoules::from_power_time(MilliWatts::new(1.0), Seconds::from_nanos(1.0));
        assert!((e.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_conversions() {
        assert!((Seconds::from_micros(4.0).to_nanos() - 4000.0).abs() < 1e-9);
        assert!((Seconds::from_picos(5.8).value() - 5.8e-12).abs() < 1e-24);
    }

    #[test]
    fn frequency_period() {
        let clk = GigaHertz::new(5.0);
        assert!((clk.period().to_nanos() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Nanometers::new(1550.0).to_string(), "1550 nm");
        assert_eq!(MilliWatts::new(0.66).to_string(), "0.66 mW");
    }

    #[test]
    fn area_from_sides() {
        let area = SquareMillimeters::from_sides(Millimeters::new(1.5), Millimeters::new(0.6));
        assert!((area.value() - 0.9).abs() < 1e-12);
    }
}
