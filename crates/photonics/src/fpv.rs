//! Fabrication-process-variation (FPV) model.
//!
//! CMOS-compatible silicon-photonic fabrication introduces die- and
//! wafer-level variations in waveguide width and thickness, which shift MR
//! resonant wavelengths by several nanometres (the paper cites up to ~9 nm
//! within a wafer).  The paper's device-level contribution (§IV.A) is a
//! fabricated design-space exploration showing that a 400 nm input / 800 nm
//! ring waveguide design cuts the FPV-induced drift from ~7.1 nm to ~2.1 nm —
//! a 70% reduction — which directly lowers the tuning power needed to
//! compensate.
//!
//! The authors' measurements come from an EBeam-fabricated chip; here the chip
//! is replaced by an analytical sensitivity model (see `DESIGN.md`,
//! substitution table): resonance drift is the product of a geometry-dependent
//! sensitivity (nm of drift per nm of width error) and a process corner
//! describing the width/thickness error distribution.  The sensitivities are
//! calibrated so the two designs reproduce the paper's 7.1 nm / 2.1 nm values
//! at the default process corner.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::mr::MrGeometry;
use crate::units::Nanometers;

/// Drift sensitivity (nm of resonance shift per nm of waveguide-width error)
/// of the conventional single-mode design.
///
/// Calibrated so a 3σ width error of the default process corner produces the
/// paper's 7.1 nm worst-case drift.
pub const CONVENTIONAL_SENSITIVITY: f64 = 7.1 / 15.0;

/// Drift sensitivity of the width-optimized (400/800 nm) design.
///
/// Calibrated so the same process corner produces the paper's 2.1 nm
/// worst-case drift (a 70% reduction).
pub const OPTIMIZED_SENSITIVITY: f64 = 2.1 / 15.0;

/// A fabrication process corner: the statistical distribution of geometry
/// errors across a wafer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessCorner {
    /// Standard deviation of the waveguide-width error.
    pub width_sigma: Nanometers,
    /// Standard deviation of the waveguide-thickness error (folded into the
    /// effective width error with a 0.5 weight, since thickness variations
    /// perturb the effective index less strongly than width variations).
    pub thickness_sigma: Nanometers,
}

impl ProcessCorner {
    /// The default process corner used throughout the reproduction:
    /// 5 nm width σ and 2 nm thickness σ, representative of 193 nm immersion /
    /// EBeam silicon-photonic processes.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            width_sigma: Nanometers::new(5.0),
            thickness_sigma: Nanometers::new(2.0),
        }
    }

    /// A tighter, well-controlled process corner.
    #[must_use]
    pub fn tight() -> Self {
        Self {
            width_sigma: Nanometers::new(2.5),
            thickness_sigma: Nanometers::new(1.0),
        }
    }

    /// Effective 1σ geometry error combining width and (de-weighted)
    /// thickness contributions in quadrature.
    #[must_use]
    pub fn effective_sigma(&self) -> Nanometers {
        let w = self.width_sigma.value();
        let t = 0.5 * self.thickness_sigma.value();
        Nanometers::new((w * w + t * t).sqrt())
    }

    /// Worst-case (3σ) geometry error.
    #[must_use]
    pub fn worst_case_error(&self) -> Nanometers {
        self.effective_sigma() * 3.0
    }
}

impl Default for ProcessCorner {
    fn default() -> Self {
        Self::typical()
    }
}

/// FPV model for a particular MR geometry under a particular process corner.
///
/// # Example
///
/// ```
/// use crosslight_photonics::fpv::{FpvModel, ProcessCorner};
/// use crosslight_photonics::mr::MrGeometry;
///
/// let conventional = FpvModel::new(MrGeometry::conventional(), ProcessCorner::typical());
/// let optimized = FpvModel::new(MrGeometry::optimized(), ProcessCorner::typical());
/// // The optimized design is markedly less sensitive (paper: 7.1 → 2.1 nm).
/// assert!(optimized.worst_case_drift().value() < 0.4 * conventional.worst_case_drift().value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpvModel {
    geometry: MrGeometry,
    corner: ProcessCorner,
    sensitivity: f64,
}

impl FpvModel {
    /// Creates an FPV model, inferring the drift sensitivity from the
    /// geometry (width-optimized designs get the reduced sensitivity).
    #[must_use]
    pub fn new(geometry: MrGeometry, corner: ProcessCorner) -> Self {
        let sensitivity = Self::sensitivity_for(&geometry);
        Self {
            geometry,
            corner,
            sensitivity,
        }
    }

    /// Drift sensitivity (nm drift per nm of effective geometry error) for a
    /// geometry.
    ///
    /// Wider ring waveguides confine the optical mode more strongly, so the
    /// effective index — and therefore the resonance — moves less per
    /// nanometre of edge error.  The model interpolates between the calibrated
    /// conventional and optimized sensitivities using the ring width.  The
    /// intended phase-matched penalty: designs whose bus and ring widths are
    /// within 50 nm of each other respond to correlated width errors in both
    /// waveguides at once, so they carry the full interpolated sensitivity,
    /// while width-mismatched designs (partially decorrelated edge errors)
    /// earn an 8% relief factor.
    #[must_use]
    pub fn sensitivity_for(geometry: &MrGeometry) -> f64 {
        if geometry.is_width_optimized() {
            return OPTIMIZED_SENSITIVITY;
        }
        let ring_width = geometry.ring_waveguide_width.value();
        // Interpolate: 500 nm → conventional sensitivity, 800 nm → optimized.
        let t = ((ring_width - 500.0) / 300.0).clamp(0.0, 1.0);
        let base = CONVENTIONAL_SENSITIVITY * (1.0 - t) + OPTIMIZED_SENSITIVITY * t;
        let matched_widths =
            (geometry.ring_waveguide_width.value() - geometry.input_waveguide_width.value()).abs()
                < 50.0;
        if matched_widths {
            base
        } else {
            base * 0.92
        }
    }

    /// Returns the geometry this model describes.
    #[must_use]
    pub fn geometry(&self) -> &MrGeometry {
        &self.geometry
    }

    /// Returns the process corner.
    #[must_use]
    pub fn corner(&self) -> &ProcessCorner {
        &self.corner
    }

    /// Returns the drift sensitivity (nm/nm).
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Standard deviation of the FPV-induced resonance drift.
    #[must_use]
    pub fn drift_sigma(&self) -> Nanometers {
        self.corner.effective_sigma() * self.sensitivity
    }

    /// Worst-case (3σ) FPV-induced resonance drift — the number the paper
    /// quotes (7.1 nm conventional, 2.1 nm optimized).
    #[must_use]
    pub fn worst_case_drift(&self) -> Nanometers {
        self.corner.worst_case_error() * self.sensitivity
    }

    /// Mean absolute drift of the distribution (half-normal mean, ≈0.7979σ),
    /// used by the tuning-power model for the *average* compensation cost.
    #[must_use]
    pub fn mean_absolute_drift(&self) -> Nanometers {
        self.drift_sigma() * (2.0 / std::f64::consts::PI).sqrt()
    }

    /// Samples one FPV-induced resonance drift (signed, in nm).
    ///
    /// Uses a Box–Muller transform so the only external dependency is the
    /// `rand` RNG itself.
    pub fn sample_drift<R: Rng + ?Sized>(&self, rng: &mut R) -> Nanometers {
        let sigma = self.drift_sigma().value();
        // Box–Muller: u1 in (0, 1], u2 in [0, 1).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        Nanometers::new(z * sigma)
    }

    /// Samples `count` drifts and returns summary statistics, used by the
    /// device design-space-exploration experiment (E1).
    ///
    /// Allocates one sample buffer per call; repeated studies should hold a
    /// [`DriftWorkspace`] and use [`FpvModel::monte_carlo_with`] instead.
    pub fn monte_carlo<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> DriftStatistics {
        self.monte_carlo_with(count, rng, &mut DriftWorkspace::new())
    }

    /// Allocation-free [`FpvModel::monte_carlo`]: samples into the
    /// workspace's reusable buffer, so steady-state sweeps (many geometries ×
    /// process corners) never touch the heap.  Statistically identical to
    /// `monte_carlo` — same RNG stream, same statistics, bit for bit.
    pub fn monte_carlo_with<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
        workspace: &mut DriftWorkspace,
    ) -> DriftStatistics {
        workspace.samples.clear();
        workspace
            .samples
            .extend((0..count).map(|_| self.sample_drift(rng).value()));
        DriftStatistics::from_samples_mut(&mut workspace.samples)
    }
}

/// Reusable sample buffer for [`FpvModel::monte_carlo_with`].
#[derive(Debug, Default, Clone)]
pub struct DriftWorkspace {
    samples: Vec<f64>,
}

impl DriftWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Summary statistics of a set of sampled resonance drifts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftStatistics {
    /// Number of samples.
    pub count: usize,
    /// Mean of the absolute drift.
    pub mean_abs: Nanometers,
    /// Standard deviation of the signed drift.
    pub sigma: Nanometers,
    /// Maximum absolute drift observed.
    pub max_abs: Nanometers,
    /// 99.7th percentile (≈3σ) of the absolute drift.
    pub p997_abs: Nanometers,
}

impl DriftStatistics {
    /// Computes statistics from raw signed drift samples (in nm).
    ///
    /// Copies the samples into a scratch buffer; callers that already own a
    /// mutable buffer should use [`DriftStatistics::from_samples_mut`].
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        Self::from_samples_mut(&mut samples.to_vec())
    }

    /// In-place variant of [`DriftStatistics::from_samples`]: consumes the
    /// buffer's contents (entries are replaced by their absolute values and
    /// partially reordered) so the 99.7th percentile comes from an O(n)
    /// `select_nth_unstable` pass instead of a full sort.  The statistics are
    /// bit-identical to the sorted reference implementation
    /// ([`reference::drift_statistics_sorted`]).
    #[must_use]
    pub fn from_samples_mut(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean_abs: Nanometers::new(0.0),
                sigma: Nanometers::new(0.0),
                max_abs: Nanometers::new(0.0),
                p997_abs: Nanometers::new(0.0),
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let mean_abs = samples.iter().map(|x| x.abs()).sum::<f64>() / n;
        let max_abs = samples.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
        for x in samples.iter_mut() {
            *x = x.abs();
        }
        let idx = ((samples.len() as f64) * 0.997).floor() as usize;
        let idx = idx.min(samples.len() - 1);
        // Selecting the idx-th element leaves exactly the value a full sort
        // would place there, so p99.7 matches the sorted path bit for bit.
        let (_, &mut p997, _) = samples.select_nth_unstable_by(idx, f64::total_cmp);
        Self {
            count: samples.len(),
            mean_abs: Nanometers::new(mean_abs),
            sigma: Nanometers::new(var.sqrt()),
            max_abs: Nanometers::new(max_abs),
            p997_abs: Nanometers::new(p997),
        }
    }
}

/// Reference implementations preserved for exact-equality testing (the same
/// pattern as `crosslight_neural::tensor::reference`).
pub mod reference {
    use super::{DriftStatistics, Nanometers};

    /// The original [`DriftStatistics::from_samples`]: allocates an absolute-
    /// value vector and fully sorts it to read the 99.7th percentile.
    #[must_use]
    pub fn drift_statistics_sorted(samples: &[f64]) -> DriftStatistics {
        if samples.is_empty() {
            return DriftStatistics {
                count: 0,
                mean_abs: Nanometers::new(0.0),
                sigma: Nanometers::new(0.0),
                max_abs: Nanometers::new(0.0),
                p997_abs: Nanometers::new(0.0),
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let mean_abs = samples.iter().map(|x| x.abs()).sum::<f64>() / n;
        let max_abs = samples.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
        let mut abs: Vec<f64> = samples.iter().map(|x| x.abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let idx = ((abs.len() as f64) * 0.997).floor() as usize;
        let p997 = abs[idx.min(abs.len() - 1)];
        DriftStatistics {
            count: samples.len(),
            mean_abs: Nanometers::new(mean_abs),
            sigma: Nanometers::new(var.sqrt()),
            max_abs: Nanometers::new(max_abs),
            p997_abs: Nanometers::new(p997),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibration_reproduces_paper_drifts() {
        let conventional = FpvModel::new(MrGeometry::conventional(), ProcessCorner::typical());
        let optimized = FpvModel::new(MrGeometry::optimized(), ProcessCorner::typical());
        let conv_drift = conventional.worst_case_drift().value();
        let opt_drift = optimized.worst_case_drift().value();
        // Paper: 7.1 nm → 2.1 nm (±10% tolerance on the calibration).
        assert!(
            (conv_drift - 7.1).abs() / 7.1 < 0.1,
            "conventional {conv_drift}"
        );
        assert!((opt_drift - 2.1).abs() / 2.1 < 0.1, "optimized {opt_drift}");
        // 70% reduction.
        let reduction = 1.0 - opt_drift / conv_drift;
        assert!((reduction - 0.70).abs() < 0.05, "reduction {reduction}");
    }

    #[test]
    fn optimized_sensitivity_is_lower() {
        const { assert!(OPTIMIZED_SENSITIVITY < CONVENTIONAL_SENSITIVITY) };
        assert!(
            FpvModel::sensitivity_for(&MrGeometry::optimized())
                < FpvModel::sensitivity_for(&MrGeometry::conventional())
        );
    }

    #[test]
    fn intermediate_widths_interpolate() {
        let mut geometry = MrGeometry::conventional();
        geometry.ring_waveguide_width = Nanometers::new(650.0);
        let s = FpvModel::sensitivity_for(&geometry);
        assert!(s < CONVENTIONAL_SENSITIVITY);
        assert!(s > OPTIMIZED_SENSITIVITY);
    }

    #[test]
    fn tighter_process_reduces_drift() {
        let loose = FpvModel::new(MrGeometry::optimized(), ProcessCorner::typical());
        let tight = FpvModel::new(MrGeometry::optimized(), ProcessCorner::tight());
        assert!(tight.worst_case_drift() < loose.worst_case_drift());
    }

    #[test]
    fn monte_carlo_matches_analytic_sigma() {
        let model = FpvModel::new(MrGeometry::conventional(), ProcessCorner::typical());
        let mut rng = StdRng::seed_from_u64(42);
        let stats = model.monte_carlo(20_000, &mut rng);
        assert_eq!(stats.count, 20_000);
        let rel_err =
            (stats.sigma.value() - model.drift_sigma().value()).abs() / model.drift_sigma().value();
        assert!(rel_err < 0.05, "sigma relative error {rel_err}");
        // Worst observed drift should be in the vicinity of the 3σ figure.
        assert!(stats.max_abs.value() > model.worst_case_drift().value() * 0.8);
        assert!(stats.p997_abs <= stats.max_abs);
    }

    #[test]
    fn mean_absolute_drift_is_half_normal_mean() {
        let model = FpvModel::new(MrGeometry::optimized(), ProcessCorner::typical());
        let expected = model.drift_sigma().value() * (2.0 / std::f64::consts::PI).sqrt();
        assert!((model.mean_absolute_drift().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn drift_statistics_handle_empty_input() {
        let stats = DriftStatistics::from_samples(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.max_abs.value(), 0.0);
        assert_eq!(stats, reference::drift_statistics_sorted(&[]));
        assert_eq!(stats, DriftStatistics::from_samples_mut(&mut []));
    }

    #[test]
    fn selection_based_statistics_match_the_sorted_reference() {
        let samples: Vec<f64> = (0..1500)
            .map(|i| ((i as f64) * 0.7).sin() * 3.0 - 1.0)
            .collect();
        let fast = DriftStatistics::from_samples(&samples);
        let sorted = reference::drift_statistics_sorted(&samples);
        assert_eq!(fast, sorted);
        let mut buffer = samples.clone();
        assert_eq!(DriftStatistics::from_samples_mut(&mut buffer), sorted);
    }

    #[test]
    fn workspace_monte_carlo_is_bit_identical_and_reuses_its_buffer() {
        let model = FpvModel::new(MrGeometry::conventional(), ProcessCorner::typical());
        let mut fresh_rng = StdRng::seed_from_u64(42);
        let fresh = model.monte_carlo(5_000, &mut fresh_rng);
        let mut workspace = DriftWorkspace::new();
        let mut ws_rng = StdRng::seed_from_u64(42);
        let with_ws = model.monte_carlo_with(5_000, &mut ws_rng, &mut workspace);
        assert_eq!(fresh, with_ws);
        let capacity = workspace.samples.capacity();
        let mut ws_rng = StdRng::seed_from_u64(42);
        let again = model.monte_carlo_with(5_000, &mut ws_rng, &mut workspace);
        assert_eq!(again, with_ws);
        assert_eq!(workspace.samples.capacity(), capacity);
    }

    #[test]
    fn mismatched_widths_earn_the_decorrelation_relief() {
        let mut matched = MrGeometry::conventional();
        matched.input_waveguide_width = matched.ring_waveguide_width;
        let mut mismatched = matched;
        mismatched.input_waveguide_width =
            Nanometers::new(matched.ring_waveguide_width.value() - 120.0);
        let full = FpvModel::sensitivity_for(&matched);
        let relieved = FpvModel::sensitivity_for(&mismatched);
        assert!((relieved - full * 0.92).abs() < 1e-12);
    }
}
