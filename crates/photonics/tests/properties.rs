//! Property-based tests for the photonics substrate.

use crosslight_photonics::crosstalk::{
    bank_resolution_bits, reference as crosstalk_reference, ChannelCrosstalkAnalysis,
};
use crosslight_photonics::fpv::{reference as fpv_reference, DriftStatistics};
use crosslight_photonics::laser::LaserPowerModel;
use crosslight_photonics::loss::{LossBudget, LossModel};
use crosslight_photonics::mr::{Microring, MrGeometry};
use crosslight_photonics::spectrum::Lorentzian;
use crosslight_photonics::thermal::ThermalCrosstalkModel;
use crosslight_photonics::units::{DecibelLoss, Micrometers, MilliWatts, Nanometers};
use proptest::prelude::*;

proptest! {
    /// dBm ↔ mW conversion round-trips for any positive power.
    #[test]
    fn dbm_milliwatt_roundtrip(power_mw in 1e-6f64..1e6) {
        let p = MilliWatts::new(power_mw);
        let back = p.to_dbm().to_milliwatts();
        prop_assert!((back.value() - power_mw).abs() / power_mw < 1e-9);
    }

    /// Loss ↔ linear transmission round-trips for any loss in a sane range.
    #[test]
    fn loss_linear_roundtrip(loss_db in 0.001f64..60.0) {
        let loss = DecibelLoss::new(loss_db);
        let back = DecibelLoss::from_linear_transmission(loss.to_linear_transmission());
        prop_assert!((back.value() - loss_db).abs() < 1e-9);
    }

    /// The Lorentzian response is bounded in (0, 1] and symmetric around its
    /// centre.
    #[test]
    fn lorentzian_bounded_and_symmetric(
        q in 1000.0f64..50_000.0,
        detuning in -20.0f64..20.0,
    ) {
        let line = Lorentzian::from_q_factor(Nanometers::new(1550.0), q);
        let plus = line.response(Nanometers::new(1550.0 + detuning));
        let minus = line.response(Nanometers::new(1550.0 - detuning));
        prop_assert!(plus > 0.0 && plus <= 1.0);
        prop_assert!((plus - minus).abs() < 1e-12);
    }

    /// Detuning inversion: for any achievable transmission the MR reproduces
    /// it after tuning.
    #[test]
    fn mr_detuning_roundtrip(target in 0.01f64..0.999) {
        let ring = Microring::new(MrGeometry::optimized(), Nanometers::new(1550.0));
        let target = target.max(ring.min_transmission() + 1e-6);
        let detuning = ring.detuning_for_transmission(target).unwrap();
        let got = ring.through_transmission(ring.resonance() + detuning);
        prop_assert!((got - target).abs() < 1e-6);
    }

    /// Through transmission is always within [extinction floor, 1].
    #[test]
    fn mr_transmission_bounded(offset_nm in -50.0f64..50.0) {
        let ring = Microring::new(MrGeometry::optimized(), Nanometers::new(1550.0));
        let t = ring.through_transmission(Nanometers::new(1550.0 + offset_nm));
        prop_assert!(t >= ring.min_transmission() - 1e-12);
        prop_assert!(t <= 1.0 + 1e-12);
    }

    /// Thermal phase-crosstalk ratio is in (0, 1], monotonically decreasing
    /// with distance, and multiplicative over distance (exponential law).
    #[test]
    fn thermal_crosstalk_exponential_law(d in 0.1f64..100.0) {
        let model = ThermalCrosstalkModel::default();
        let r1 = model.phase_crosstalk_ratio(Micrometers::new(d));
        let r2 = model.phase_crosstalk_ratio(Micrometers::new(2.0 * d));
        prop_assert!(r1 > 0.0 && r1 <= 1.0);
        prop_assert!(r2 <= r1);
        prop_assert!((r2 - r1 * r1).abs() < 1e-9);
    }

    /// Laser power requirement is monotone in both loss and channel count.
    #[test]
    fn laser_power_monotone(
        loss_a in 0.0f64..30.0,
        extra in 0.0f64..30.0,
        channels in 1usize..64,
    ) {
        let model = LaserPowerModel::paper();
        let base = model
            .required_optical_power(DecibelLoss::new(loss_a), channels)
            .unwrap()
            .value();
        let lossier = model
            .required_optical_power(DecibelLoss::new(loss_a + extra), channels)
            .unwrap()
            .value();
        let wider = model
            .required_optical_power(DecibelLoss::new(loss_a), channels * 2)
            .unwrap()
            .value();
        prop_assert!(lossier >= base - 1e-12);
        prop_assert!(wider >= base - 1e-12);
    }

    /// Loss budgets only ever grow as components are added.
    #[test]
    fn loss_budget_monotone(
        waveguide_um in 0.0f64..50_000.0,
        splitters in 0usize..64,
        mrs in 0usize..64,
    ) {
        let mut budget = LossBudget::new(LossModel::paper());
        let mut previous = budget.total().value();
        budget.add_propagation(Micrometers::new(waveguide_um));
        prop_assert!(budget.total().value() >= previous - 1e-12);
        previous = budget.total().value();
        budget.add_splitters(splitters);
        prop_assert!(budget.total().value() >= previous - 1e-12);
        previous = budget.total().value();
        budget.add_mr_through(mrs);
        prop_assert!(budget.total().value() >= previous - 1e-12);
    }

    /// Bank resolution never improves when MRs are added or spacing shrinks.
    #[test]
    fn resolution_monotone(
        count in 2usize..24,
        spacing in 0.2f64..2.0,
    ) {
        let more_mrs =
            bank_resolution_bits(count + 4, Nanometers::new(spacing), 8000.0, 16).unwrap();
        let base = bank_resolution_bits(count, Nanometers::new(spacing), 8000.0, 16).unwrap();
        let tighter =
            bank_resolution_bits(count, Nanometers::new(spacing / 2.0), 8000.0, 16).unwrap();
        prop_assert!(more_mrs <= base);
        prop_assert!(tighter <= base);
    }

    /// The allocation-free uniform-bank resolution is bit-identical to the
    /// original vector-materializing implementation over the whole parameter
    /// space the experiments sweep.
    #[test]
    fn bank_resolution_matches_reference_exactly(
        count in 1usize..32,
        spacing in 0.01f64..3.0,
        q in 500.0f64..20_000.0,
        cap in 1u32..24,
    ) {
        let fast = bank_resolution_bits(count, Nanometers::new(spacing), q, cap).unwrap();
        let naive = crosstalk_reference::bank_resolution_bits_naive(
            count,
            Nanometers::new(spacing),
            q,
            cap,
        )
        .unwrap();
        prop_assert_eq!(fast, naive);
    }

    /// Coupling-matrix invariants: unit diagonal, symmetric magnitude
    /// ordering (for every victim, a closer aggressor couples at least as
    /// strongly), and exact agreement between the matrix-backed and per-pair
    /// noise/resolution paths.
    #[test]
    fn coupling_matrix_invariants(
        count in 2usize..20,
        spacing in 0.05f64..2.5,
        q in 1_000.0f64..16_000.0,
    ) {
        let channels: Vec<Nanometers> = (0..count)
            .map(|i| Nanometers::new(1550.0) + Nanometers::new(spacing) * i as f64)
            .collect();
        let analysis = ChannelCrosstalkAnalysis::new(channels, q).unwrap();
        let matrix = analysis.coupling_matrix();
        for i in 0..count {
            prop_assert_eq!(matrix.coupling(i, i), 1.0);
            for j in 0..count {
                prop_assert_eq!(matrix.coupling(i, j), analysis.coupling(i, j));
                if i != j {
                    prop_assert!(matrix.coupling(i, j) > 0.0 && matrix.coupling(i, j) < 1.0);
                }
                // Magnitude ordering is symmetric: both directions of a pair
                // order identically against any other pair with larger
                // detuning.
                for k in 0..count {
                    if k != i
                        && j != i
                        && (i as i64 - k as i64).abs() > (i as i64 - j as i64).abs()
                    {
                        prop_assert!(matrix.coupling(i, k) <= matrix.coupling(i, j));
                        prop_assert!(matrix.coupling(k, i) <= matrix.coupling(j, i));
                    }
                }
            }
            prop_assert_eq!(matrix.noise_power(i), analysis.noise_power(i));
        }
        let mut noise = Vec::new();
        matrix.noise_power_into(&mut noise);
        prop_assert_eq!(noise.len(), count);
        prop_assert_eq!(matrix.worst_noise_power(), analysis.worst_noise_power());
        prop_assert_eq!(matrix.resolution_bits(16), analysis.resolution_bits(16));
    }

    /// Selection-based drift statistics equal the fully-sorted reference
    /// bit for bit, for any sample vector.
    #[test]
    fn drift_statistics_match_sorted_reference(
        samples in proptest::collection::vec(-25.0f64..25.0, 0..400),
    ) {
        let fast = DriftStatistics::from_samples(&samples);
        let sorted = fpv_reference::drift_statistics_sorted(&samples);
        prop_assert_eq!(fast, sorted);
        let mut buffer = samples.clone();
        prop_assert_eq!(DriftStatistics::from_samples_mut(&mut buffer), sorted);
    }
}
