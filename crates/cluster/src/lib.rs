//! # crosslight-cluster
//!
//! A fault-tolerant cluster tier over the
//! [`crosslight-server`](crosslight_server) front-end: a [`Router`]
//! speaks the same `crosslight-wire/v1` JSON-lines protocol to clients
//! and shards `eval` traffic across N backend servers by the
//! platform-stable fingerprint of each request's canonical cache key —
//! the same key the runtime shards workers and memoizes reports by, so a
//! shard's repeats land on the backend that already holds them cached.
//!
//! Layering:
//!
//! * [`backend`] — per-backend circuit breakers (closed → open →
//!   half-open → closed) and rendezvous (highest-random-weight) replica
//!   placement.
//! * [`retry`] — bounded exponential backoff with deterministic jitter
//!   and the cluster-wide token [`RetryBudget`] that brakes retry storms.
//! * [`faultpoint`] — a seeded, deterministic fault-injection harness
//!   (kill/stall/slow/garble at named points) behind the chaos suite.
//! * [`router`] — the wire front-end: health-checked failover,
//!   per-request deadlines, re-routing of queued and in-flight work off
//!   dead backends, and explicit retryable `unavailable` shedding when a
//!   shard has no live replica.  Never a hang, never a silent wrong
//!   answer: forwarded traffic is byte-identical to a single server.
//!
//! See the **Cluster** section of `RUNTIME.md` at the repository root
//! for topology, routing and failure semantics, and the fault-point
//! catalog.
//!
//! [`Router`]: router::Router
//! [`RetryBudget`]: retry::RetryBudget

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod faultpoint;
pub mod retry;
pub mod router;

pub use backend::CircuitState;
pub use faultpoint::{FaultAction, FaultPlan, FaultPoint, FaultRule, Firing};
pub use retry::{RetryBudget, RetryPolicy};
pub use router::{HedgePolicy, Router, RouterOptions, RouterStats};

/// Convenient re-exports for downstream users.
pub mod prelude {
    pub use crate::backend::CircuitState;
    pub use crate::faultpoint::{FaultAction, FaultPlan, FaultPoint, FaultRule, Firing};
    pub use crate::retry::{RetryBudget, RetryPolicy};
    pub use crate::router::{HedgePolicy, Router, RouterOptions, RouterStats};
}
