//! The cluster router: a wire-compatible front-end over N backend servers.
//!
//! # Thread model
//!
//! One **acceptor** owns the client listener.  Each client connection gets
//! a **reader** (decode, route, answer local ops) and a **writer** (owns
//! the socket write half behind a bounded channel).  Each backend gets
//! `backend_connections` **exchange workers** pulling from one bounded
//! per-backend queue, plus one **health prober**.  A single **retry
//! timer** holds backed-off jobs until they are due.
//!
//! # Bit-identical forwarding
//!
//! The router never re-encodes evaluation traffic.  A client's `eval`
//! line is decoded once — to validate it and derive the routing
//! fingerprint — but the *original bytes* travel to the backend, and the
//! backend's response line travels back verbatim.  Locally answered ops
//! (`ping`, decode errors, spec errors) go through the same `wire`
//! encoder a single [`Server`](crosslight_server::server::Server) uses.
//! A cluster is therefore byte-indistinguishable from one server on every
//! answered request, which the chaos suite asserts multiset-exactly.
//!
//! # Failure policy
//!
//! Every hop is bounded: connects, reads and writes time out, and every
//! request carries an end-to-end deadline.  A transport fault (dead
//! connection, timeout, garbled or mismatched response) records a breaker
//! failure and *fails over* — the job is re-dispatched to the next
//! replica, which is safe because evaluations are pure and idempotent.
//! Retries consume a bounded, cluster-wide [`RetryBudget`] and back off
//! exponentially with deterministic jitter.  When no replica is usable
//! and the budget, attempts or deadline run out, the request is shed with
//! an explicit retryable `unavailable` error — never a hang, never a
//! silent wrong answer.
//!
//! # Warm recovery and hedging
//!
//! A backend readmitted through half-open probing can receive a **warm
//! handoff** (`RouterOptions::handoff`, on by default): while the breaker
//! sits in the `warming` state — still excluded from routing — the router
//! pulls `snapshot` streams from the surviving replicas, keeps the
//! entries whose shard includes the rejoining backend (plus all
//! shard-agnostic model-cache entries), and `restore`s them, so the first
//! routed request already hits a warm cache.  Any handoff failure
//! degrades to the old cold readmission.  Optional **hedged requests**
//! ([`HedgePolicy`]) launch a second attempt on the next replica after a
//! delay derived from the observed per-hop p99; the first answer wins
//! exactly once and the loser is cancelled or discarded, never delivered.

use std::collections::{HashMap, HashSet};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::cache::CacheKey;
use crosslight_server::loadgen::{Client, ClientOptions};
use crosslight_server::server::{read_line_limited, LineRead};
use crosslight_server::wire::{
    self, ErrorFrame, ErrorKind, MetricsFormat, MetricsFrame, Request, RequestBody, Response,
    ResponseBody, SnapshotEntry, StatsFrame, WireMetricsSnapshot, WireRuntimeStats,
    WireServerStats, DEFAULT_MAX_LINE_BYTES,
};
use crosslight_telemetry::{render_text, Counter, Gauge, Histogram, Registry, RegistrySnapshot};

use crate::backend::{rendezvous_order, BackendState, CircuitState, Transition};
use crate::faultpoint::{FaultAction, FaultPlan, FaultPoint};
use crate::retry::{RetryBudget, RetryPolicy};

/// Routing state is a `u64` bitmask of tried backends, so a cluster is
/// capped at 64 backends — far beyond the deployment sizes this tier
/// models.
pub const MAX_BACKENDS: usize = 64;

/// Tuning knobs of the router.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Replicas per shard: how many backends (in rendezvous order) may
    /// serve a given fingerprint (clamped to `1..=backends`).
    pub replication: usize,
    /// Concurrent exchange connections per backend.
    pub backend_connections: usize,
    /// Queued jobs per backend before dispatch spills to the next replica.
    pub queue_capacity: usize,
    /// Bound on dialing a backend.
    pub connect_timeout: Duration,
    /// Bound on one request/response exchange with a backend.
    pub request_timeout: Duration,
    /// End-to-end deadline of one client request, covering every retry
    /// and backoff; expiry sheds the request with `unavailable`.
    pub request_deadline: Duration,
    /// Period of per-backend health probes.
    pub health_interval: Duration,
    /// Bound on one health probe (connect + ping + pong).
    pub health_timeout: Duration,
    /// How long an open breaker cools down before half-open probing.
    pub open_cooldown: Duration,
    /// Consecutive failures that trip a backend's breaker.
    pub failure_threshold: u32,
    /// Per-request retry schedule.
    pub retry: RetryPolicy,
    /// Cluster-wide retry budget, in tokens (see [`RetryBudget`]).
    pub retry_budget: u64,
    /// Maximum accepted line length in bytes (clamped to at least 1 KiB).
    pub max_line_bytes: usize,
    /// Bound on a stalled client-socket write.
    pub write_timeout: Duration,
    /// Whether a readmitted backend gets a warm-state handoff (snapshot
    /// pulled from surviving replicas and restored before it takes
    /// traffic).  Off, readmission is cold — exactly the pre-handoff
    /// behavior.
    pub handoff: bool,
    /// Hedged-request policy; disabled by default.
    pub hedge: HedgePolicy,
    /// Fault-injection plan; [`FaultPlan::none`] in production.
    pub faults: Arc<FaultPlan>,
}

/// When and how the router hedges a slow eval with a second attempt on
/// another replica.  The hedge fires after a delay derived from the
/// observed per-hop p99, first answer wins exactly once, and the loser
/// is accounted (won / cancelled / wasted) — never delivered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Master switch; `false` routes every request exactly once.
    pub enabled: bool,
    /// The hedge fires after `p99(cluster_hop_ns) * p99_multiplier`.
    pub p99_multiplier: f64,
    /// Lower clamp on the hedge delay (also used before any p99 exists).
    pub min_delay: Duration,
    /// Upper clamp on the hedge delay.
    pub max_delay: Duration,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            p99_multiplier: 1.5,
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl HedgePolicy {
    /// The enabled policy with default timing knobs.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// The delay before the hedge fires, given the current per-hop p99 in
    /// nanoseconds (0 when no exchange has completed yet).
    #[must_use]
    pub fn delay(&self, p99_ns: u64) -> Duration {
        let scaled = (p99_ns as f64 * self.p99_multiplier.max(0.0)) as u64;
        Duration::from_nanos(scaled).clamp(self.min_delay, self.max_delay)
    }
}

impl Default for RouterOptions {
    fn default() -> Self {
        Self {
            replication: 2,
            backend_connections: 2,
            queue_capacity: 256,
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(15),
            health_interval: Duration::from_millis(50),
            health_timeout: Duration::from_millis(500),
            open_cooldown: Duration::from_millis(250),
            failure_threshold: 3,
            retry: RetryPolicy::default(),
            retry_budget: 128,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            write_timeout: Duration::from_secs(30),
            handoff: true,
            hedge: HedgePolicy::default(),
            faults: FaultPlan::none(),
        }
    }
}

impl RouterOptions {
    /// Returns a copy with a different replication factor.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Returns a copy with a different per-backend exchange-connection
    /// fan.  Each exchange occupies one connection for a full round trip,
    /// so this bounds a backend's concurrent in-flight requests.
    #[must_use]
    pub fn with_backend_connections(mut self, backend_connections: usize) -> Self {
        self.backend_connections = backend_connections;
        self
    }

    /// Returns a copy with a different end-to-end request deadline.
    #[must_use]
    pub fn with_request_deadline(mut self, request_deadline: Duration) -> Self {
        self.request_deadline = request_deadline;
        self
    }

    /// Returns a copy with a different per-exchange timeout.
    #[must_use]
    pub fn with_request_timeout(mut self, request_timeout: Duration) -> Self {
        self.request_timeout = request_timeout;
        self
    }

    /// Returns a copy with different health-check timings.
    #[must_use]
    pub fn with_health(
        mut self,
        health_interval: Duration,
        health_timeout: Duration,
        open_cooldown: Duration,
    ) -> Self {
        self.health_interval = health_interval;
        self.health_timeout = health_timeout;
        self.open_cooldown = open_cooldown;
        self
    }

    /// Returns a copy with a different breaker threshold.
    #[must_use]
    pub fn with_failure_threshold(mut self, failure_threshold: u32) -> Self {
        self.failure_threshold = failure_threshold;
        self
    }

    /// Returns a copy with a different retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns a copy with a different retry budget.
    #[must_use]
    pub fn with_retry_budget(mut self, retry_budget: u64) -> Self {
        self.retry_budget = retry_budget;
        self
    }

    /// Returns a copy with warm-state handoff on readmission toggled.
    #[must_use]
    pub fn with_handoff(mut self, handoff: bool) -> Self {
        self.handoff = handoff;
        self
    }

    /// Returns a copy with a different hedged-request policy.
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = hedge;
        self
    }

    /// Returns a copy executing the given fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }
}

/// Why a request was shed instead of answered with a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShedReason {
    /// The end-to-end deadline elapsed (or would elapse during backoff).
    Deadline,
    /// Every I/O attempt the policy allows has failed.
    Attempts,
    /// The cluster-wide retry budget is empty.
    Budget,
    /// The router is draining.
    Shutdown,
}

/// Counter handles of the router, registered under the `cluster_` prefix.
#[derive(Debug)]
struct ClusterTelemetry {
    registry: Registry,
    requests_total: Counter,
    evals_routed: Counter,
    evals_ok: Counter,
    evals_failed: Counter,
    failovers: Counter,
    retries: Counter,
    shed_deadline: Counter,
    shed_attempts: Counter,
    shed_budget: Counter,
    shed_shutdown: Counter,
    malformed_total: Counter,
    oversized_total: Counter,
    connections_accepted: Counter,
    connections_active: Gauge,
    connections_drained: Counter,
    retry_budget_tenths: Gauge,
    faults_injected: Counter,
    hop_ns: Histogram,
    handoff_snapshots_sent: Counter,
    handoff_restored: Counter,
    handoff_entries: Counter,
    handoff_failed: Counter,
    handoff_warmup_ns: Histogram,
    hedges_launched: Counter,
    hedges_won: Counter,
    hedges_cancelled: Counter,
    hedges_wasted: Counter,
    forwarded: Vec<Counter>,
    backend_failures: Vec<Counter>,
    backend_state: Vec<Gauge>,
    circuit_opened: Vec<Counter>,
    readmitted: Vec<Counter>,
    probes_ok: Vec<Counter>,
    probes_failed: Vec<Counter>,
    queue_depth: Vec<Gauge>,
}

impl ClusterTelemetry {
    fn new(backends: usize) -> Self {
        let registry = Registry::new();
        let shed_help = "Requests answered with an explicit shed error instead of a report.";
        let per_backend = |f: &dyn Fn(&str) -> Counter| -> Vec<Counter> {
            (0..backends).map(|b| f(&b.to_string())).collect()
        };
        Self {
            requests_total: registry.counter(
                "cluster_requests_total",
                "Request frames received from clients, including malformed ones.",
            ),
            evals_routed: registry.counter(
                "cluster_evals_routed_total",
                "Eval requests accepted for routing to a backend.",
            ),
            evals_ok: registry.counter(
                "cluster_evals_ok_total",
                "Eval requests answered with a forwarded backend report.",
            ),
            evals_failed: registry.counter(
                "cluster_evals_failed_total",
                "Eval requests answered with an error frame (local or forwarded).",
            ),
            failovers: registry.counter(
                "cluster_failovers_total",
                "Jobs re-dispatched away from a failed or tripped backend.",
            ),
            retries: registry.counter(
                "cluster_retries_total",
                "Retry attempts that consumed a retry-budget token.",
            ),
            shed_deadline: registry.counter_with(
                "cluster_shed_total",
                shed_help,
                &[("reason", "deadline")],
            ),
            shed_attempts: registry.counter_with(
                "cluster_shed_total",
                shed_help,
                &[("reason", "attempts")],
            ),
            shed_budget: registry.counter_with(
                "cluster_shed_total",
                shed_help,
                &[("reason", "budget")],
            ),
            shed_shutdown: registry.counter_with(
                "cluster_shed_total",
                shed_help,
                &[("reason", "shutdown")],
            ),
            malformed_total: registry.counter(
                "cluster_malformed_total",
                "Lines rejected as invalid JSON, UTF-8, or protocol frames.",
            ),
            oversized_total: registry.counter(
                "cluster_oversized_total",
                "Lines rejected for exceeding the configured length limit.",
            ),
            connections_accepted: registry.counter(
                "cluster_connections_accepted_total",
                "Client connections accepted since startup.",
            ),
            connections_active: registry.gauge(
                "cluster_connections_active",
                "Currently open client connections.",
            ),
            connections_drained: registry.counter(
                "cluster_connections_drained_total",
                "Client connections that finished and were fully drained.",
            ),
            retry_budget_tenths: registry.gauge(
                "cluster_retry_budget_tenths",
                "Remaining retry budget, in tenths of a token.",
            ),
            faults_injected: registry.counter(
                "cluster_faults_injected_total",
                "Faults fired by the configured fault plan.",
            ),
            hop_ns: registry.histogram(
                "cluster_hop_ns",
                "Latency of one successful backend exchange, in nanoseconds.",
            ),
            handoff_snapshots_sent: registry.counter(
                "cluster_handoff_snapshots_sent_total",
                "Warm-state snapshots pulled from donor backends during handoff.",
            ),
            handoff_restored: registry.counter(
                "cluster_handoff_restored_total",
                "Warm-state restores applied to rejoining backends.",
            ),
            handoff_entries: registry.counter(
                "cluster_handoff_entries_total",
                "Cache entries transferred into rejoining backends.",
            ),
            handoff_failed: registry.counter(
                "cluster_handoff_failed_total",
                "Handoffs that fell back to a cold readmission.",
            ),
            handoff_warmup_ns: registry.histogram(
                "cluster_handoff_warmup_ns",
                "Duration of one warm-state handoff attempt, in nanoseconds.",
            ),
            hedges_launched: registry.counter(
                "cluster_hedges_launched_total",
                "Hedge attempts parked behind the p99-derived delay.",
            ),
            hedges_won: registry.counter(
                "cluster_hedges_won_total",
                "Hedge attempts that answered the client first.",
            ),
            hedges_cancelled: registry.counter(
                "cluster_hedges_cancelled_total",
                "Hedge attempts cancelled before doing I/O (primary answered).",
            ),
            hedges_wasted: registry.counter(
                "cluster_hedges_wasted_total",
                "Hedge or primary attempts whose outcome lost the race and was discarded.",
            ),
            forwarded: per_backend(&|b| {
                registry.counter_with(
                    "cluster_forwarded_total",
                    "Jobs handed to a backend queue.",
                    &[("backend", b)],
                )
            }),
            backend_failures: per_backend(&|b| {
                registry.counter_with(
                    "cluster_backend_failures_total",
                    "Transport faults observed talking to a backend.",
                    &[("backend", b)],
                )
            }),
            backend_state: (0..backends)
                .map(|b| {
                    registry.gauge_with(
                        "cluster_backend_state",
                        "Circuit state per backend: 0 closed, 1 open, 2 half-open, 3 warming.",
                        &[("backend", &b.to_string())],
                    )
                })
                .collect(),
            circuit_opened: per_backend(&|b| {
                registry.counter_with(
                    "cluster_circuit_opened_total",
                    "Times a backend's circuit breaker tripped open.",
                    &[("backend", b)],
                )
            }),
            readmitted: per_backend(&|b| {
                registry.counter_with(
                    "cluster_backend_readmitted_total",
                    "Times a backend passed half-open probing and rejoined.",
                    &[("backend", b)],
                )
            }),
            probes_ok: per_backend(&|b| {
                registry.counter_with(
                    "cluster_health_probes_total",
                    "Health probes by outcome.",
                    &[("backend", b), ("outcome", "ok")],
                )
            }),
            probes_failed: per_backend(&|b| {
                registry.counter_with(
                    "cluster_health_probes_total",
                    "Health probes by outcome.",
                    &[("backend", b), ("outcome", "failed")],
                )
            }),
            queue_depth: (0..backends)
                .map(|b| {
                    registry.gauge_with(
                        "cluster_queue_depth",
                        "Jobs waiting in a backend's dispatch queue.",
                        &[("backend", &b.to_string())],
                    )
                })
                .collect(),
            registry,
        }
    }

    fn sync_state_gauge(&self, backend: usize, state: CircuitState) {
        self.backend_state[backend].set(state.as_gauge());
    }
}

/// One admitted eval in flight through the cluster: the client's raw
/// line, its routing key, and the reply lane back to the client's writer.
/// A hedged request is two clones of the same job sharing one `delivered`
/// cell; whichever resolves first claims the cell and answers.
#[derive(Debug, Clone)]
struct ForwardJob {
    id: u64,
    line: Arc<String>,
    fingerprint: u64,
    /// Failed I/O attempts so far (the in-progress attempt not included).
    attempts: u32,
    /// Bitmask of backends tried since the last backoff, so a failover
    /// never ping-pongs between two dying replicas without progress.
    tried: u64,
    deadline: Instant,
    /// Whether this copy is the hedge (second) attempt.  A hedge may win
    /// with a report but never answers with an error — failure reporting
    /// belongs to the primary, so a hedge that cannot even dispatch can
    /// never shed a request whose primary is still in flight.
    hedge: bool,
    /// First-answer-wins cell shared by the primary and its hedge.
    delivered: Arc<AtomicBool>,
    reply: SyncSender<String>,
}

impl ForwardJob {
    /// Claims the exactly-once answer slot; `true` for the first caller.
    fn claim(&self) -> bool {
        !self.delivered.swap(true, Ordering::SeqCst)
    }

    /// Whether some copy of this request has already answered the client.
    fn is_claimed(&self) -> bool {
        self.delivered.load(Ordering::SeqCst)
    }
}

#[derive(Debug)]
struct ClusterShared {
    options: RouterOptions,
    backends: Vec<BackendState>,
    queues: Vec<SyncSender<ForwardJob>>,
    /// Lane to the retry timer; `None` once shutdown drained it.
    retry_tx: Mutex<Option<Sender<(Instant, ForwardJob)>>>,
    telemetry: ClusterTelemetry,
    budget: RetryBudget,
    shutting_down: AtomicBool,
    /// Read-half handles of live client connections, for shutdown.
    connections: Mutex<HashMap<u64, TcpStream>>,
    /// Prebuilt Table I workloads, indexed as [`PaperModel::all`].
    workloads: [Arc<NetworkWorkload>; 4],
}

impl ClusterShared {
    fn faults(&self) -> &FaultPlan {
        &self.options.faults
    }

    fn metrics_snapshot(&self) -> RegistrySnapshot {
        let telemetry = &self.telemetry;
        telemetry
            .retry_budget_tenths
            .set(self.budget.balance_tenths() as i64);
        telemetry.faults_injected.store(self.faults().injected());
        for backend in &self.backends {
            telemetry.sync_state_gauge(backend.index, backend.state());
        }
        telemetry.registry.snapshot()
    }
}

/// Point-in-time router counters, for tests and operators.  The full
/// metric surface (per-backend families, histograms) is on the `metrics`
/// wire op and [`Router::metrics_snapshot`]; this struct carries the
/// headline numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// Request frames received from clients.
    pub requests_total: u64,
    /// Eval requests accepted for routing.
    pub evals_routed: u64,
    /// Evals answered with a forwarded backend report.
    pub evals_ok: u64,
    /// Evals answered with an error frame.
    pub evals_failed: u64,
    /// Jobs re-dispatched away from a failed or tripped backend.
    pub failovers: u64,
    /// Retries that consumed a budget token.
    pub retries: u64,
    /// Requests shed with an explicit error, summed over reasons.
    pub shed_total: u64,
    /// Faults fired by the configured fault plan.
    pub faults_injected: u64,
    /// Circuit state per backend.
    pub backend_states: Vec<CircuitState>,
    /// Readmissions (half-open probe success) per backend.
    pub readmitted: Vec<u64>,
}

/// Upper bound on encoded response lines queued per client connection.
const WRITE_QUEUE_LINES: usize = 1024;

/// Poll period of the worker/retry/prober loops when idle; bounds how
/// long shutdown waits for them to notice the flag.
const IDLE_POLL: Duration = Duration::from_millis(20);

/// The fault-tolerant cluster router.
///
/// # Example
///
/// ```
/// use crosslight_cluster::router::{Router, RouterOptions};
/// use crosslight_server::loadgen::Client;
/// use crosslight_server::server::{Server, ServerOptions};
/// use crosslight_server::wire::{EvalSpec, ResponseBody};
/// use crosslight_core::variants::CrossLightVariant;
/// use crosslight_neural::zoo::PaperModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let backend = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(2))?;
/// let router = Router::bind("127.0.0.1:0", &[backend.local_addr()], RouterOptions::default())?;
/// let mut client = Client::connect(router.local_addr())?;
/// let spec = EvalSpec::paper(CrossLightVariant::OptTed, PaperModel::Lenet5SignMnist);
/// let response = client.eval(7, &spec)?;
/// assert!(matches!(response.body, ResponseBody::Eval(_)));
/// router.shutdown();
/// backend.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Router {
    local_addr: SocketAddr,
    shared: Arc<ClusterShared>,
    acceptor: Option<JoinHandle<()>>,
    connection_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    worker_threads: Vec<JoinHandle<()>>,
    prober_threads: Vec<JoinHandle<()>>,
    retry_thread: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds the client listener and spawns the routing machinery over
    /// the given backend addresses.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; rejects an empty backend list and more
    /// than [`MAX_BACKENDS`] backends as `InvalidInput`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backends: &[SocketAddr],
        options: RouterOptions,
    ) -> std::io::Result<Self> {
        if backends.is_empty() || backends.len() > MAX_BACKENDS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("backend count must be 1..={MAX_BACKENDS}"),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let options = RouterOptions {
            replication: options.replication.clamp(1, backends.len()),
            backend_connections: options.backend_connections.max(1),
            queue_capacity: options.queue_capacity.max(1),
            max_line_bytes: options.max_line_bytes.max(1024),
            ..options
        };
        let workloads = PaperModel::all().map(|model| {
            Arc::new(
                NetworkWorkload::from_spec(&model.spec()).expect("the Table I workloads are valid"),
            )
        });
        let backend_states: Vec<BackendState> = backends
            .iter()
            .enumerate()
            .map(|(index, &addr)| {
                BackendState::new(
                    index,
                    addr,
                    options.failure_threshold,
                    options.open_cooldown,
                )
            })
            .collect();
        let mut queues = Vec::with_capacity(backends.len());
        let mut receivers = Vec::with_capacity(backends.len());
        for _ in backends {
            let (tx, rx) = mpsc::sync_channel::<ForwardJob>(options.queue_capacity);
            queues.push(tx);
            receivers.push(Arc::new(Mutex::new(rx)));
        }
        let (retry_tx, retry_rx) = mpsc::channel::<(Instant, ForwardJob)>();
        let retry_budget = options.retry_budget;
        let shared = Arc::new(ClusterShared {
            telemetry: ClusterTelemetry::new(backends.len()),
            budget: RetryBudget::new(retry_budget),
            options,
            backends: backend_states,
            queues,
            retry_tx: Mutex::new(Some(retry_tx)),
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            workloads,
        });
        let mut worker_threads = Vec::new();
        for (index, rx) in receivers.into_iter().enumerate() {
            for conn in 0..shared.options.backend_connections {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                worker_threads.push(
                    std::thread::Builder::new()
                        .name(format!("crosslight-cluster-b{index}-x{conn}"))
                        .spawn(move || backend_worker(&shared, index, &rx))
                        .expect("spawning a backend worker succeeds"),
                );
            }
        }
        let prober_threads = (0..shared.backends.len())
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("crosslight-cluster-probe-{index}"))
                    .spawn(move || prober_loop(&shared, index))
                    .expect("spawning a health prober succeeds")
            })
            .collect();
        let retry_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("crosslight-cluster-retry".to_string())
                .spawn(move || retry_loop(&shared, &retry_rx))
                .expect("spawning the retry timer succeeds")
        };
        let connection_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let threads = Arc::clone(&connection_threads);
            std::thread::Builder::new()
                .name("crosslight-cluster-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &threads))
                .expect("spawning the acceptor thread succeeds")
        };
        Ok(Self {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            connection_threads,
            worker_threads,
            prober_threads,
            retry_thread: Some(retry_thread),
        })
    }

    /// The bound client-facing address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Repoints backend `index` at a new address — the restart path: a
    /// backend that comes back on a fresh ephemeral port keeps its shard
    /// assignment and is readmitted through half-open probing.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn update_backend_addr(&self, index: usize, addr: SocketAddr) {
        self.shared.backends[index].set_addr(addr);
    }

    /// Headline router counters.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        let telemetry = &self.shared.telemetry;
        RouterStats {
            requests_total: telemetry.requests_total.get(),
            evals_routed: telemetry.evals_routed.get(),
            evals_ok: telemetry.evals_ok.get(),
            evals_failed: telemetry.evals_failed.get(),
            failovers: telemetry.failovers.get(),
            retries: telemetry.retries.get(),
            shed_total: telemetry.shed_deadline.get()
                + telemetry.shed_attempts.get()
                + telemetry.shed_budget.get()
                + telemetry.shed_shutdown.get(),
            faults_injected: self.shared.faults().injected(),
            backend_states: self
                .shared
                .backends
                .iter()
                .map(BackendState::state)
                .collect(),
            readmitted: telemetry.readmitted.iter().map(Counter::get).collect(),
        }
    }

    /// One scrape of the `cluster_` metric registry, mirrors synchronized.
    #[must_use]
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.shared.metrics_snapshot()
    }

    /// Stops accepting clients, answers or sheds everything in flight,
    /// and joins every router thread.  Bounded: nothing in the router
    /// waits without a timeout.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake and join the acceptor.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Half-close client reads: readers stop taking input and their
        // in-flight jobs resolve (answered, failed over, or shed) while
        // the workers and the retry timer are still running.
        {
            let connections = self
                .shared
                .connections
                .lock()
                .expect("connection registry lock poisoned");
            for stream in connections.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut threads = self
                .connection_threads
                .lock()
                .expect("connection thread registry lock poisoned");
            threads.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        // No unresolved job exists now; retire the retry timer, then the
        // (idle) workers and probers.
        drop(
            self.shared
                .retry_tx
                .lock()
                .expect("retry lane lock poisoned")
                .take(),
        );
        if let Some(handle) = self.retry_thread.take() {
            let _ = handle.join();
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        for handle in self.prober_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

// ---------------------------------------------------------------------------
// Dispatch and shedding
// ---------------------------------------------------------------------------

/// Routes a job to the first untried, closed-circuit backend in its
/// shard's rendezvous order; with none usable, schedules a backed-off
/// retry (waiting for capacity or readmission costs no attempt or budget
/// token — only failed I/O does).
fn dispatch(shared: &Arc<ClusterShared>, mut job: ForwardJob) {
    if job.hedge && job.is_claimed() {
        shared.telemetry.hedges_cancelled.inc();
        return;
    }
    if Instant::now() >= job.deadline {
        shed(
            shared,
            &job,
            ShedReason::Deadline,
            "request deadline exceeded",
        );
        return;
    }
    let order = rendezvous_order(job.fingerprint, shared.backends.len());
    for &backend in &order[..shared.options.replication] {
        if job.tried & (1u64 << backend) != 0 || !shared.backends[backend].available() {
            continue;
        }
        match shared.queues[backend].try_send(job) {
            Ok(()) => {
                shared.telemetry.forwarded[backend].inc();
                shared.telemetry.queue_depth[backend].add(1);
                return;
            }
            Err(TrySendError::Full(returned)) | Err(TrySendError::Disconnected(returned)) => {
                job = returned;
            }
        }
    }
    schedule_retry(shared, job);
}

/// Parks a job until its backoff elapses, clearing its tried-set so the
/// next round may revisit every replica.
fn schedule_retry(shared: &Arc<ClusterShared>, mut job: ForwardJob) {
    if shared.shutting_down.load(Ordering::SeqCst) {
        shed(shared, &job, ShedReason::Shutdown, "router is draining");
        return;
    }
    job.tried = 0;
    let delay = shared.options.retry.backoff(job.id, job.attempts.max(1));
    let due = Instant::now() + delay;
    if due >= job.deadline {
        shed(
            shared,
            &job,
            ShedReason::Deadline,
            "request deadline would elapse during backoff",
        );
        return;
    }
    let lane = shared.retry_tx.lock().expect("retry lane lock poisoned");
    match lane.as_ref().map(|tx| tx.send((due, job))) {
        Some(Ok(())) => {}
        Some(Err(mpsc::SendError((_, job)))) => {
            shed(shared, &job, ShedReason::Shutdown, "router is draining");
        }
        None => { /* unreachable: the lane is only taken after jobs resolve */ }
    }
}

/// Builds the hedge copy of a freshly admitted job, when the policy
/// allows one.  The hedge pre-marks the primary's preferred replica as
/// tried, so with replication > 1 the two attempts land on different
/// backends.
fn hedge_copy(shared: &Arc<ClusterShared>, job: &ForwardJob) -> Option<ForwardJob> {
    if !shared.options.hedge.enabled || shared.options.replication < 2 {
        return None;
    }
    let mut copy = job.clone();
    copy.hedge = true;
    let order = rendezvous_order(copy.fingerprint, shared.backends.len());
    copy.tried = 1u64 << order[0];
    Some(copy)
}

/// Parks a hedge on the retry timer until its p99-derived delay elapses.
/// A hedge that cannot be parked (deadline too close, router draining) is
/// cancelled — it never answers the client.
fn park_hedge(shared: &Arc<ClusterShared>, job: ForwardJob) {
    let delay = shared
        .options
        .hedge
        .delay(shared.telemetry.hop_ns.snapshot().p99());
    let due = Instant::now() + delay;
    if due >= job.deadline || shared.shutting_down.load(Ordering::SeqCst) {
        shared.telemetry.hedges_cancelled.inc();
        return;
    }
    let lane = shared.retry_tx.lock().expect("retry lane lock poisoned");
    match lane.as_ref().map(|tx| tx.send((due, job))) {
        Some(Ok(())) => shared.telemetry.hedges_launched.inc(),
        _ => shared.telemetry.hedges_cancelled.inc(),
    }
}

/// Books a failed I/O attempt (or a backend's retryable refusal) against
/// the job and fails over; exhaustion delivers `fallback` when the last
/// backend answered with a retryable error frame, else sheds.
fn retry_after_failure(
    shared: &Arc<ClusterShared>,
    backend: usize,
    mut job: ForwardJob,
    fallback: Option<String>,
    detail: &str,
) {
    job.tried |= 1u64 << backend;
    job.attempts += 1;
    if job.attempts >= shared.options.retry.max_attempts.max(1) {
        exhaust(shared, &job, fallback, ShedReason::Attempts, detail);
        return;
    }
    if !shared.budget.try_withdraw() {
        exhaust(shared, &job, fallback, ShedReason::Budget, detail);
        return;
    }
    shared.telemetry.retries.inc();
    shared.telemetry.failovers.inc();
    dispatch(shared, job);
}

/// Final answer for a job whose retries ran out: forward the backend's
/// own (retryable) error line when one exists, else shed `unavailable`.
fn exhaust(
    shared: &Arc<ClusterShared>,
    job: &ForwardJob,
    fallback: Option<String>,
    reason: ShedReason,
    detail: &str,
) {
    match fallback {
        Some(line) => {
            if job.hedge {
                shared.telemetry.hedges_wasted.inc();
                return;
            }
            if !job.claim() {
                return;
            }
            shared.telemetry.evals_failed.inc();
            let _ = job.reply.send(line);
        }
        None => {
            let reason_name = match reason {
                ShedReason::Attempts => "retry attempts exhausted",
                ShedReason::Budget => "retry budget exhausted",
                ShedReason::Deadline => "request deadline exceeded",
                ShedReason::Shutdown => "router is draining",
            };
            shed(shared, job, reason, &format!("{reason_name}: {detail}"));
        }
    }
}

/// Answers a job with an explicit typed error — the never-hang guarantee.
/// Shutdown sheds speak `shutting_down`; everything else is the retryable
/// `unavailable`.
fn shed(shared: &Arc<ClusterShared>, job: &ForwardJob, reason: ShedReason, detail: &str) {
    // A hedge is an optimization, not a second chance to fail: its own
    // exhaustion is discarded while the primary still owns the request.
    if job.hedge {
        shared.telemetry.hedges_wasted.inc();
        return;
    }
    // The hedge already answered: the primary's late failure is moot.
    if !job.claim() {
        return;
    }
    let (kind, counter) = match reason {
        ShedReason::Deadline => (ErrorKind::Unavailable, &shared.telemetry.shed_deadline),
        ShedReason::Attempts => (ErrorKind::Unavailable, &shared.telemetry.shed_attempts),
        ShedReason::Budget => (ErrorKind::Unavailable, &shared.telemetry.shed_budget),
        ShedReason::Shutdown => (ErrorKind::ShuttingDown, &shared.telemetry.shed_shutdown),
    };
    counter.inc();
    shared.telemetry.evals_failed.inc();
    let response = Response::error(Some(job.id), ErrorFrame::new(kind, detail));
    let _ = job.reply.send(wire::encode_response(&response));
}

// ---------------------------------------------------------------------------
// Backend exchange workers
// ---------------------------------------------------------------------------

/// One persistent exchange connection to a backend, stamped with the
/// backend's connection generation at dial time.  The generation bumps
/// whenever the breaker opens or the address changes, so a stale stamp
/// means this socket belongs to a previous incarnation of the backend —
/// writing to it would blame the *recovered* process for its dead
/// predecessor's corpse and could re-trip a freshly closed breaker.
#[derive(Debug)]
struct BackendConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    generation: u64,
}

fn open_conn(
    addr: SocketAddr,
    options: &RouterOptions,
    generation: u64,
) -> std::io::Result<BackendConn> {
    let stream = TcpStream::connect_timeout(&addr, options.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(options.request_timeout))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok(BackendConn {
        stream,
        reader,
        generation,
    })
}

/// What one backend exchange produced.
enum Exchange {
    /// A response line to forward to the client verbatim.
    Deliver(String),
    /// The backend refused with a retryable error frame (overloaded,
    /// draining): fail over without blaming the backend's health, and
    /// forward this line if retries run out.
    SoftRetry(String),
    /// A transport fault: connection dead, timeout, garbled or mismatched
    /// response.  Blames the backend's breaker and fails over.
    Fault(String),
}

fn backend_worker(shared: &Arc<ClusterShared>, backend: usize, rx: &Mutex<Receiver<ForwardJob>>) {
    let mut conn: Option<BackendConn> = None;
    loop {
        let received = {
            let rx = rx.lock().expect("backend queue lock poisoned");
            rx.recv_timeout(IDLE_POLL)
        };
        match received {
            Ok(job) => {
                shared.telemetry.queue_depth[backend].sub(1);
                process_job(shared, backend, &mut conn, job);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // Shutdown joins client connections (and therefore
                    // resolves every job) before joining workers, so an
                    // idle poll here means the queue stays empty.
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn process_job(
    shared: &Arc<ClusterShared>,
    backend: usize,
    conn: &mut Option<BackendConn>,
    mut job: ForwardJob,
) {
    // A queued hedge whose primary already answered does no I/O at all.
    if job.hedge && job.is_claimed() {
        shared.telemetry.hedges_cancelled.inc();
        return;
    }
    if Instant::now() >= job.deadline {
        shed(
            shared,
            &job,
            ShedReason::Deadline,
            "request deadline exceeded",
        );
        return;
    }
    // The breaker may have tripped while the job sat in the queue; requeue
    // costs nothing (no I/O happened).
    if !shared.backends[backend].available() {
        job.tried |= 1u64 << backend;
        shared.telemetry.failovers.inc();
        dispatch(shared, job);
        return;
    }
    let started = Instant::now();
    match exchange(shared, backend, conn, &job) {
        Exchange::Deliver(line) => {
            shared
                .telemetry
                .hop_ns
                .record(started.elapsed().as_nanos() as u64);
            let transition = shared.backends[backend].record_success();
            if transition == Transition::Readmitted {
                shared.telemetry.readmitted[backend].inc();
            }
            shared
                .telemetry
                .sync_state_gauge(backend, shared.backends[backend].state());
            shared.budget.deposit();
            if job.claim() {
                if job.hedge {
                    shared.telemetry.hedges_won.inc();
                }
                shared.telemetry.evals_ok.inc();
                let _ = job.reply.send(line);
            } else {
                // The other copy answered first; this exchange's work is
                // sunk cost (the backend bookkeeping above still counts).
                shared.telemetry.hedges_wasted.inc();
            }
        }
        Exchange::SoftRetry(line) => {
            let detail = "backend refused with a retryable error";
            retry_after_failure(shared, backend, job, Some(line), detail);
        }
        Exchange::Fault(detail) => {
            *conn = None;
            shared.telemetry.backend_failures[backend].inc();
            if shared.backends[backend].record_failure() == Transition::Opened {
                shared.telemetry.circuit_opened[backend].inc();
            }
            shared
                .telemetry
                .sync_state_gauge(backend, shared.backends[backend].state());
            retry_after_failure(shared, backend, job, None, &detail);
        }
    }
}

/// One request/response exchange with a backend, every step bounded by
/// the per-hop timeout and the job's remaining deadline.
fn exchange(
    shared: &Arc<ClusterShared>,
    backend: usize,
    conn: &mut Option<BackendConn>,
    job: &ForwardJob,
) -> Exchange {
    let options = &shared.options;
    let mut send_garbled = false;
    match shared.faults().check(FaultPoint::BackendSend, backend) {
        Some(FaultAction::Kill) => {
            *conn = None;
            return Exchange::Fault("injected: connection killed at backend.send".to_string());
        }
        Some(FaultAction::Stall(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            *conn = None;
            return Exchange::Fault("injected: stall at backend.send".to_string());
        }
        Some(FaultAction::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(FaultAction::Garble) => send_garbled = true,
        None => {}
    }
    // A pooled connection from before the backend's last outage (or
    // re-address) is a socket to a dead incarnation: drop it and redial
    // rather than letting its write error count against the live process.
    let generation = shared.backends[backend].generation();
    if conn.as_ref().is_some_and(|c| c.generation != generation) {
        *conn = None;
    }
    if conn.is_none() {
        match open_conn(shared.backends[backend].addr(), options, generation) {
            Ok(fresh) => *conn = Some(fresh),
            Err(err) => return Exchange::Fault(format!("connect: {err}")),
        }
    }
    let active = conn.as_mut().expect("connection was just established");
    let remaining = job.deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Exchange::Fault("request deadline exceeded before send".to_string());
    }
    let hop_budget = options.request_timeout.min(remaining);
    if active.stream.set_read_timeout(Some(hop_budget)).is_err() {
        *conn = None;
        return Exchange::Fault("socket configuration failed".to_string());
    }
    let garbled_line;
    let outgoing: &str = if send_garbled {
        garbled_line = FaultPlan::garble_line(&job.line);
        &garbled_line
    } else {
        &job.line
    };
    let wrote = active
        .stream
        .write_all(outgoing.as_bytes())
        .and_then(|()| active.stream.write_all(b"\n"))
        .and_then(|()| active.stream.flush());
    if let Err(err) = wrote {
        *conn = None;
        return Exchange::Fault(format!("write: {err}"));
    }
    let mut line = match read_line_limited(&mut active.reader, options.max_line_bytes) {
        LineRead::Line(line) => line,
        LineRead::Eof => {
            *conn = None;
            return Exchange::Fault("backend closed the connection mid-exchange".to_string());
        }
        LineRead::Oversized => {
            *conn = None;
            return Exchange::Fault("backend response exceeded the line limit".to_string());
        }
        LineRead::InvalidUtf8 => {
            *conn = None;
            return Exchange::Fault("backend response is not valid UTF-8".to_string());
        }
        LineRead::Error => {
            *conn = None;
            return Exchange::Fault("read: socket error or per-hop timeout".to_string());
        }
    };
    match shared.faults().check(FaultPoint::BackendRecv, backend) {
        Some(FaultAction::Kill) => {
            *conn = None;
            return Exchange::Fault("injected: connection killed at backend.recv".to_string());
        }
        Some(FaultAction::Stall(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            *conn = None;
            return Exchange::Fault("injected: stall at backend.recv".to_string());
        }
        Some(FaultAction::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(FaultAction::Garble) => line = FaultPlan::garble_line(&line),
        None => {}
    }
    match wire::decode_response(&line) {
        Ok(response) if response.id == Some(job.id) => match &response.body {
            ResponseBody::Error(frame) if frame.kind.retryable() => Exchange::SoftRetry(line),
            ResponseBody::Eval(_) | ResponseBody::Error(_) => Exchange::Deliver(line),
            _ => {
                *conn = None;
                Exchange::Fault("protocol violation: unexpected response body".to_string())
            }
        },
        Ok(response) => {
            *conn = None;
            Exchange::Fault(format!(
                "response id {:?} does not match request id {}",
                response.id, job.id
            ))
        }
        Err(_) => {
            *conn = None;
            Exchange::Fault("undecodable response line".to_string())
        }
    }
}

// ---------------------------------------------------------------------------
// Retry timer
// ---------------------------------------------------------------------------

/// A parked job ordered by due time (earliest first out).
#[derive(Debug)]
struct Parked {
    due: Instant,
    seq: u64,
    job: ForwardJob,
}

fn retry_loop(shared: &Arc<ClusterShared>, rx: &Receiver<(Instant, ForwardJob)>) {
    let mut parked: Vec<Parked> = Vec::new();
    let mut seq: u64 = 0;
    loop {
        let now = Instant::now();
        let wait = parked
            .iter()
            .map(|entry| entry.due.saturating_duration_since(now))
            .min()
            .unwrap_or(IDLE_POLL)
            .min(IDLE_POLL);
        match rx.recv_timeout(wait) {
            Ok((due, job)) => {
                parked.push(Parked { due, seq, job });
                seq += 1;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Shutdown: the lane is gone; nothing new can arrive.
                fire_due(shared, &mut parked, true);
                return;
            }
        }
        // During shutdown, waiting out backoffs would stall the drain;
        // fire everything immediately (dispatch still answers each job).
        let fire_all = shared.shutting_down.load(Ordering::SeqCst);
        fire_due(shared, &mut parked, fire_all);
    }
}

/// Dispatches every parked job that is due (or all of them), oldest
/// first so retry order is deterministic.
fn fire_due(shared: &Arc<ClusterShared>, parked: &mut Vec<Parked>, fire_all: bool) {
    let now = Instant::now();
    let mut due: Vec<Parked> = Vec::new();
    let mut index = 0;
    while index < parked.len() {
        if fire_all || parked[index].due <= now {
            due.push(parked.swap_remove(index));
        } else {
            index += 1;
        }
    }
    due.sort_by_key(|entry| (entry.due, entry.seq));
    for entry in due {
        dispatch(shared, entry.job);
    }
}

// ---------------------------------------------------------------------------
// Health probing
// ---------------------------------------------------------------------------

fn prober_loop(shared: &Arc<ClusterShared>, backend: usize) {
    loop {
        // Sleep one health interval in short slices so shutdown is never
        // blocked behind a long interval.
        let mut remaining = shared.options.health_interval;
        while !remaining.is_zero() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            let slice = remaining.min(IDLE_POLL);
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        if shared.backends[backend].tick_probation() == Transition::Probation {
            shared
                .telemetry
                .sync_state_gauge(backend, CircuitState::HalfOpen);
        }
        // Open circuits cool down untouched; closed ones get a liveness
        // watch and half-open ones a readmission trial.
        if shared.backends[backend].state() == CircuitState::Open {
            continue;
        }
        if probe(shared, backend) {
            shared.telemetry.probes_ok[backend].inc();
            if shared.options.handoff
                && shared.backends[backend].state() == CircuitState::HalfOpen
                && shared.backends[backend].begin_warming()
            {
                // Readmission with warm state: the backend stays out of
                // the routing set (warming) while surviving replicas'
                // snapshots are restored into it, so its first routed
                // request already hits a warm cache.  Any handoff failure
                // degrades to the plain cold readmission below.
                shared
                    .telemetry
                    .sync_state_gauge(backend, CircuitState::Warming);
                attempt_handoff(shared, backend);
                if shared.backends[backend].complete_warming() == Transition::Readmitted {
                    shared.telemetry.readmitted[backend].inc();
                }
            } else if shared.backends[backend].record_success() == Transition::Readmitted {
                shared.telemetry.readmitted[backend].inc();
            }
        } else {
            shared.telemetry.probes_failed[backend].inc();
            if shared.backends[backend].record_failure() == Transition::Opened {
                shared.telemetry.circuit_opened[backend].inc();
            }
        }
        shared
            .telemetry
            .sync_state_gauge(backend, shared.backends[backend].state());
    }
}

/// One ping/pong with a deadline; `false` on any deviation.
fn probe(shared: &Arc<ClusterShared>, backend: usize) -> bool {
    let timeout = shared.options.health_timeout;
    let mut garble = false;
    match shared.faults().check(FaultPoint::HealthProbe, backend) {
        Some(FaultAction::Kill) => return false,
        Some(FaultAction::Stall(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            return false;
        }
        Some(FaultAction::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(FaultAction::Garble) => garble = true,
        None => {}
    }
    let addr = shared.backends[backend].addr();
    let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return false;
    }
    let mut ping = wire::encode_request(&Request {
        id: 0,
        body: RequestBody::Ping,
    });
    if garble {
        ping = FaultPlan::garble_line(&ping);
    }
    let mut stream = stream;
    if stream
        .write_all(ping.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_err()
    {
        return false;
    }
    let mut reader = BufReader::new(stream);
    let LineRead::Line(line) = read_line_limited(&mut reader, shared.options.max_line_bytes) else {
        return false;
    };
    matches!(
        wire::decode_response(&line),
        Ok(Response {
            id: Some(0),
            body: ResponseBody::Pong,
        })
    )
}

// ---------------------------------------------------------------------------
// Warm-state handoff
// ---------------------------------------------------------------------------

/// One warm-state handoff into a rejoining backend, with telemetry: pull
/// snapshots from the surviving replicas, keep the entries the rejoining
/// backend is responsible for, restore them, and time the whole thing.
/// Failure is never fatal — the backend is readmitted cold.
fn attempt_handoff(shared: &Arc<ClusterShared>, backend: usize) {
    let started = Instant::now();
    let outcome = run_handoff(shared, backend);
    shared
        .telemetry
        .handoff_warmup_ns
        .record(started.elapsed().as_nanos() as u64);
    match outcome {
        Ok(0) => {}
        Ok(entries) => {
            shared.telemetry.handoff_restored.inc();
            shared.telemetry.handoff_entries.add(entries);
        }
        Err(_detail) => shared.telemetry.handoff_failed.inc(),
    }
}

/// The fallible body of a handoff; returns the number of entries the
/// rejoining backend acknowledged (0 when there was nothing to move).
fn run_handoff(shared: &Arc<ClusterShared>, backend: usize) -> Result<u64, String> {
    let mut garble = false;
    match shared.faults().check(FaultPoint::Handoff, backend) {
        Some(FaultAction::Kill) => return Err("injected: handoff killed".to_string()),
        Some(FaultAction::Stall(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            return Err("injected: stall during handoff".to_string());
        }
        Some(FaultAction::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(FaultAction::Garble) => garble = true,
        None => {}
    }
    let entries = pull_warm_state(shared, backend)?;
    if entries.is_empty() {
        return Ok(0);
    }
    push_warm_state(shared, backend, entries, garble)
}

/// Pulls one snapshot from every closed (healthy) replica except the
/// rejoining backend and keeps, deduplicated by canonical encoding:
/// result entries whose shard includes the rejoining backend, and every
/// model-cache entry (model state is shard-agnostic physics).
fn pull_warm_state(
    shared: &Arc<ClusterShared>,
    backend: usize,
) -> Result<Vec<SnapshotEntry>, String> {
    let replication = shared.options.replication;
    let backends = shared.backends.len();
    let mut seen: HashSet<String> = HashSet::new();
    let mut collected: Vec<SnapshotEntry> = Vec::new();
    let mut donors = 0usize;
    let mut pulled = 0usize;
    for donor in &shared.backends {
        if donor.index == backend || donor.state() != CircuitState::Closed {
            continue;
        }
        donors += 1;
        let Ok(mut client) = Client::connect_with(
            donor.addr(),
            ClientOptions::with_deadline(shared.options.request_timeout),
        ) else {
            continue;
        };
        let Ok(entries) = client.snapshot_entries(0) else {
            continue;
        };
        pulled += 1;
        shared.telemetry.handoff_snapshots_sent.inc();
        for entry in entries {
            let keep = match &entry {
                SnapshotEntry::Result { arch, workload, .. } => {
                    let fingerprint =
                        CacheKey::from_parts(*arch, Arc::new(workload.clone())).fingerprint();
                    rendezvous_order(fingerprint, backends)[..replication].contains(&backend)
                }
                SnapshotEntry::Model(_) => true,
            };
            if keep && seen.insert(wire::encode_snapshot_entry(&entry)) {
                collected.push(entry);
            }
        }
    }
    if donors > 0 && pulled == 0 {
        return Err("no donor replica delivered a snapshot".to_string());
    }
    Ok(collected)
}

/// Streams a restore into the rejoining backend.  The frames are built
/// here (not via [`Client::restore_entries`]) so the `Garble` fault can
/// corrupt a line in flight — the backend must then answer with a typed
/// rejection, which surfaces as a handoff failure and a cold fallback.
fn push_warm_state(
    shared: &Arc<ClusterShared>,
    backend: usize,
    entries: Vec<SnapshotEntry>,
    garble: bool,
) -> Result<u64, String> {
    let options = &shared.options;
    let budget = (options.max_line_bytes.saturating_mul(3) / 4).max(1);
    let checksum = wire::snapshot_checksum(&entries);
    let total = entries.len() as u64;
    let chunks = wire::chunk_snapshot_entries(entries, budget);
    let mut client = Client::connect_with(
        shared.backends[backend].addr(),
        ClientOptions::with_deadline(options.request_timeout),
    )
    .map_err(|err| format!("connect to rejoining backend: {err}"))?;
    let chunk_count = chunks.len() as u64;
    for (index, chunk) in chunks.into_iter().enumerate() {
        let mut line = wire::encode_request(&Request {
            id: 0,
            body: RequestBody::Restore(chunk),
        });
        if garble && index == 0 {
            line = FaultPlan::garble_line(&line);
        }
        client
            .send_raw(&line)
            .map_err(|err| format!("send restore chunk: {err}"))?;
    }
    let end = wire::encode_request(&Request {
        id: 0,
        body: RequestBody::RestoreEnd(wire::SnapshotEnd {
            chunks: chunk_count,
            entries: total,
            checksum,
        }),
    });
    client
        .send_raw(&end)
        .map_err(|err| format!("send restore end: {err}"))?;
    match client.recv() {
        Ok(Response {
            body: ResponseBody::Restored(frame),
            ..
        }) => Ok(frame.entries),
        Ok(Response {
            body: ResponseBody::Error(frame),
            ..
        }) => Err(format!(
            "rejoining backend rejected the restore ({}): {}",
            frame.kind.as_str(),
            frame.detail
        )),
        Ok(_) => Err("unexpected frame answering the restore stream".to_string()),
        Err(err) => Err(format!("read restore acknowledgement: {err}")),
    }
}

// ---------------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ClusterShared>,
    threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id: u64 = 0;
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(shared.options.write_timeout));
        // Reap finished connection handles so long-lived routers do not
        // accumulate one dead JoinHandle per historical connection.
        threads
            .lock()
            .expect("connection thread registry lock poisoned")
            .retain(|handle| !handle.is_finished());
        let connection_id = next_id;
        next_id += 1;
        shared.telemetry.connections_accepted.inc();
        shared.telemetry.connections_active.add(1);
        if let Ok(read_half) = stream.try_clone() {
            shared
                .connections
                .lock()
                .expect("connection registry lock poisoned")
                .insert(connection_id, read_half);
        }
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("crosslight-cluster-conn-{connection_id}"))
            .spawn(move || {
                handle_client(connection_id, stream, &shared);
                shared
                    .connections
                    .lock()
                    .expect("connection registry lock poisoned")
                    .remove(&connection_id);
                shared.telemetry.connections_active.sub(1);
                shared.telemetry.connections_drained.inc();
            })
            .expect("spawning a client connection thread succeeds");
        threads
            .lock()
            .expect("connection thread registry lock poisoned")
            .push(handle);
    }
}

fn handle_client(connection_id: u64, stream: TcpStream, shared: &Arc<ClusterShared>) {
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let (line_tx, line_rx) = mpsc::sync_channel::<String>(WRITE_QUEUE_LINES);
    let writer = std::thread::Builder::new()
        .name(format!("crosslight-cluster-conn-{connection_id}-write"))
        .spawn(move || client_write_loop(write_half, &line_rx))
        .expect("spawning a client writer succeeds");
    client_read_loop(shared, &stream, &line_tx);
    // EOF or shutdown: drop our sender; the writer exits once every
    // in-flight job has resolved and dropped its clone — the drain.
    drop(line_tx);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

fn client_write_loop(stream: TcpStream, lines: &Receiver<String>) {
    let mut writer = BufWriter::new(stream);
    'pump: while let Ok(line) = lines.recv() {
        if writer.write_all(line.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            break 'pump;
        }
        while let Ok(more) = lines.try_recv() {
            if writer.write_all(more.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
                break 'pump;
            }
        }
        if writer.flush().is_err() {
            break 'pump;
        }
    }
    // Clean drain or socket failure: either way tear the connection down
    // so the reader unblocks; pending reply sends fail harmlessly.
    let _ = writer.get_ref().shutdown(Shutdown::Both);
}

/// Sends one locally produced response line to the client's writer.
/// Returns `false` when the writer is gone (the connection is dead).
fn answer(lines: &SyncSender<String>, response: &Response) -> bool {
    lines.send(wire::encode_response(response)).is_ok()
}

fn client_read_loop(shared: &Arc<ClusterShared>, stream: &TcpStream, lines: &SyncSender<String>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let max_bytes = shared.options.max_line_bytes;
    let telemetry = &shared.telemetry;
    loop {
        let line = match read_line_limited(&mut reader, max_bytes) {
            LineRead::Line(line) => line,
            LineRead::Oversized => {
                telemetry.requests_total.inc();
                telemetry.oversized_total.inc();
                let frame = ErrorFrame::new(
                    ErrorKind::Oversized,
                    format!("line exceeds {max_bytes} bytes"),
                );
                if !answer(lines, &Response::error(None, frame)) {
                    return;
                }
                continue;
            }
            LineRead::InvalidUtf8 => {
                telemetry.requests_total.inc();
                telemetry.malformed_total.inc();
                let frame = ErrorFrame::new(ErrorKind::Malformed, "line is not valid UTF-8");
                if !answer(lines, &Response::error(None, frame)) {
                    return;
                }
                continue;
            }
            LineRead::Eof | LineRead::Error => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        telemetry.requests_total.inc();
        let request = match wire::decode_request(&line) {
            Ok(request) => request,
            Err(frame) => {
                telemetry.malformed_total.inc();
                let id = wire::peek_id(&line);
                if !answer(lines, &Response::error(id, frame)) {
                    return;
                }
                continue;
            }
        };
        match request.body {
            RequestBody::Ping => {
                let pong = Response {
                    id: Some(request.id),
                    body: ResponseBody::Pong,
                };
                if !answer(lines, &pong) {
                    return;
                }
            }
            RequestBody::Stats => {
                let response = aggregate_stats(shared, request.id);
                if !answer(lines, &response) {
                    return;
                }
            }
            RequestBody::Metrics { format } => {
                let frame = match format {
                    MetricsFormat::Json => {
                        MetricsFrame::Snapshot(WireMetricsSnapshot::from(&cluster_scrape(shared)))
                    }
                    MetricsFormat::Text => MetricsFrame::Text(render_text(&cluster_scrape(shared))),
                    // The router itself samples no phase traces; spans live
                    // on the backends' own metrics endpoints.
                    MetricsFormat::Spans => MetricsFrame::Spans(Vec::new()),
                };
                let response = Response {
                    id: Some(request.id),
                    body: ResponseBody::Metrics(frame),
                };
                if !answer(lines, &response) {
                    return;
                }
            }
            // The router holds no caches of its own: warm state lives on the
            // backends, and the router moves it between them during handoff.
            // Clients wanting a snapshot talk to a backend directly.
            RequestBody::Snapshot { .. } | RequestBody::Restore(_) | RequestBody::RestoreEnd(_) => {
                let frame = ErrorFrame::new(
                    ErrorKind::Unsupported,
                    "snapshot/restore are backend ops; the router holds no cache state",
                );
                if !answer(lines, &Response::error(Some(request.id), frame)) {
                    return;
                }
            }
            RequestBody::Eval(spec) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    let frame = ErrorFrame::new(ErrorKind::ShuttingDown, "router is draining");
                    if !answer(lines, &Response::error(Some(request.id), frame)) {
                        return;
                    }
                    continue;
                }
                // Decode once for validation and the routing key; the raw
                // line is what travels to the backend.
                let eval_request = match spec.to_eval_request(request.id, &shared.workloads) {
                    Ok(eval_request) => eval_request,
                    Err(frame) => {
                        telemetry.evals_failed.inc();
                        if !answer(lines, &Response::error(Some(request.id), frame)) {
                            return;
                        }
                        continue;
                    }
                };
                telemetry.evals_routed.inc();
                let job = ForwardJob {
                    id: request.id,
                    line: Arc::new(line),
                    fingerprint: eval_request.key().fingerprint(),
                    attempts: 0,
                    tried: 0,
                    deadline: Instant::now() + shared.options.request_deadline,
                    hedge: false,
                    delivered: Arc::new(AtomicBool::new(false)),
                    reply: lines.clone(),
                };
                let hedge = hedge_copy(shared, &job);
                dispatch(shared, job);
                if let Some(copy) = hedge {
                    park_hedge(shared, copy);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics aggregation
// ---------------------------------------------------------------------------

/// One cluster-wide scrape: the router's own `cluster_*` families merged
/// with the `server_*`/`runtime_*` families of every healthy backend,
/// summed across backends (counters/gauges add, histograms merge).  With
/// no backend reachable the router's own families still answer.
fn cluster_scrape(shared: &Arc<ClusterShared>) -> RegistrySnapshot {
    let own = shared.metrics_snapshot();
    let parts: Vec<RegistrySnapshot> = shared
        .backends
        .iter()
        .filter(|backend| backend.state() == CircuitState::Closed)
        .filter_map(|backend| metrics_from(backend.addr(), shared.options.health_timeout))
        .collect();
    if parts.is_empty() {
        return own;
    }
    let aggregated = RegistrySnapshot::aggregated(parts);
    // The `cluster_` prefix is disjoint from the backends' families by
    // construction; a collision would mean a misconfigured peer, in which
    // case the router's own surface wins.
    RegistrySnapshot::merged(vec![own, aggregated]).unwrap_or_else(|_| shared.metrics_snapshot())
}

fn metrics_from(addr: SocketAddr, timeout: Duration) -> Option<RegistrySnapshot> {
    let mut client = Client::connect_with(addr, ClientOptions::with_deadline(timeout)).ok()?;
    let response = client.metrics(0, MetricsFormat::Json).ok()?;
    match response.body {
        ResponseBody::Metrics(MetricsFrame::Snapshot(snapshot)) => {
            Some(snapshot.to_registry_snapshot())
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Stats aggregation
// ---------------------------------------------------------------------------

/// Fans a `stats` request out to every backend (bounded by the health
/// timeout each) and sums the answers; per-worker vectors concatenate in
/// backend order.  With zero reachable backends the op itself degrades
/// to `unavailable`.
fn aggregate_stats(shared: &Arc<ClusterShared>, id: u64) -> Response {
    let mut merged: Option<StatsFrame> = None;
    for backend in &shared.backends {
        let Some(frame) = stats_from(backend.addr(), shared.options.health_timeout) else {
            continue;
        };
        merged = Some(match merged {
            None => frame,
            Some(mut total) => {
                merge_server_stats(&mut total.server, &frame.server);
                merge_runtime_stats(&mut total.runtime, &frame.runtime);
                total
            }
        });
    }
    match merged {
        Some(frame) => Response {
            id: Some(id),
            body: ResponseBody::Stats(frame),
        },
        None => Response::error(
            Some(id),
            ErrorFrame::new(ErrorKind::Unavailable, "no backend reachable for stats"),
        ),
    }
}

fn stats_from(addr: SocketAddr, timeout: Duration) -> Option<StatsFrame> {
    let mut client = Client::connect_with(addr, ClientOptions::with_deadline(timeout)).ok()?;
    let response = client.stats(0).ok()?;
    match response.body {
        ResponseBody::Stats(frame) => Some(frame),
        _ => None,
    }
}

fn merge_server_stats(total: &mut WireServerStats, part: &WireServerStats) {
    total.connections_accepted += part.connections_accepted;
    total.connections_active += part.connections_active;
    total.requests_total += part.requests_total;
    total.evals_ok += part.evals_ok;
    total.evals_failed += part.evals_failed;
    total.shed_total += part.shed_total;
    total.malformed_total += part.malformed_total;
    total.oversized_total += part.oversized_total;
    total.queue_capacity += part.queue_capacity;
    total.in_flight += part.in_flight;
}

fn merge_runtime_stats(total: &mut WireRuntimeStats, part: &WireRuntimeStats) {
    total.submitted += part.submitted;
    total.completed += part.completed;
    total.cache_hits += part.cache_hits;
    total.cache_misses += part.cache_misses;
    total.cached_entries += part.cached_entries;
    total.prepared_configs += part.prepared_configs;
    total.per_worker.extend_from_slice(&part.per_worker);
    total.queue_depths.extend_from_slice(&part.queue_depths);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_clamp_to_sane_bounds() {
        let options = RouterOptions::default()
            .with_replication(100)
            .with_failure_threshold(0);
        let result = Router::bind("127.0.0.1:0", &[], options.clone());
        assert!(result.is_err(), "an empty backend list is rejected");
        let too_many: Vec<SocketAddr> = (0..(MAX_BACKENDS + 1))
            .map(|i| format!("127.0.0.1:{}", 1000 + i).parse().unwrap())
            .collect();
        assert!(Router::bind("127.0.0.1:0", &too_many, options).is_err());
    }

    #[test]
    fn shed_reasons_map_to_wire_vocabulary() {
        // `unavailable` must be retryable so clients know to try again,
        // and shutdown sheds must speak the existing drain vocabulary.
        assert!(ErrorKind::Unavailable.retryable());
        assert!(ErrorKind::ShuttingDown.retryable());
        assert_eq!(ErrorKind::Unavailable.as_str(), "unavailable");
    }
}
