//! Retry policy and retry budget for the cluster router.
//!
//! Two guards keep retries from amplifying an outage:
//!
//! * [`RetryPolicy`] bounds *per-request* retries: a capped attempt count
//!   and exponential backoff with deterministic half-jitter, so replays of
//!   a seeded chaos run schedule identically.
//! * [`RetryBudget`] bounds *cluster-wide* retries: a token bucket
//!   refilled by successful requests (one tenth of a token each) and
//!   drained by retries (one token each).  When every backend is failing,
//!   the budget empties and the router degrades to explicit `unavailable`
//!   shedding instead of hammering dead peers — the retry-storm brake.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crosslight_neural::fingerprint::fingerprint;

/// Bounded exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total I/O attempts per request, first try included (min 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Ceiling on the backoff between any two attempts.
    pub max_backoff: Duration,
    /// Seed of the per-(request, attempt) jitter — fixed seed, fixed
    /// schedule, so chaos runs replay bit-identically.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 5 ms base, 200 ms cap.
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            jitter_seed: 0x0c10_5732,
        }
    }
}

impl RetryPolicy {
    /// The delay before attempt `attempt` (1-based; attempt 1 is the first
    /// *retry*) of request `request_id`: half the capped exponential step
    /// plus a deterministic jitter drawn from the other half — the classic
    /// equal-jitter scheme, but replayable.
    #[must_use]
    pub fn backoff(&self, request_id: u64, attempt: u32) -> Duration {
        let exponent = attempt.saturating_sub(1).min(16);
        let step = self
            .base_backoff
            .saturating_mul(1u32 << exponent)
            .min(self.max_backoff);
        let half = step / 2;
        let spread = half.as_nanos() as u64;
        if spread == 0 {
            return step;
        }
        let jitter = fingerprint(&(self.jitter_seed, request_id, attempt)) % (spread + 1);
        half + Duration::from_nanos(jitter)
    }
}

/// Token-bucket brake on cluster-wide retry volume, in tenths of a token.
///
/// Starts full.  [`deposit`](Self::deposit) (called per successful
/// request) adds a tenth; [`try_withdraw`](Self::try_withdraw) (called per
/// retry) takes a whole token or refuses.  Sustained retries therefore
/// cannot exceed ~10% of sustained successes once the initial burst
/// capacity is spent.
#[derive(Debug)]
pub struct RetryBudget {
    tenths: AtomicU64,
    capacity_tenths: u64,
}

impl RetryBudget {
    /// A full budget of `capacity` tokens (clamped to at least 1).
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        let capacity_tenths = capacity.max(1).saturating_mul(10);
        Self {
            tenths: AtomicU64::new(capacity_tenths),
            capacity_tenths,
        }
    }

    /// Credits one tenth of a token, saturating at capacity.
    pub fn deposit(&self) {
        let mut current = self.tenths.load(Ordering::Relaxed);
        loop {
            if current >= self.capacity_tenths {
                return;
            }
            match self.tenths.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Takes one token if available; `false` means the retry must not
    /// happen and the request degrades to `unavailable`.
    pub fn try_withdraw(&self) -> bool {
        let mut current = self.tenths.load(Ordering::Relaxed);
        loop {
            if current < 10 {
                return false;
            }
            match self.tenths.compare_exchange_weak(
                current,
                current - 10,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current balance in tenths of a token (a telemetry gauge feed).
    #[must_use]
    pub fn balance_tenths(&self) -> u64 {
        self.tenths.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_capped_and_jittered_deterministically() {
        let policy = RetryPolicy::default();
        // Deterministic: same (request, attempt) → same delay.
        assert_eq!(policy.backoff(42, 1), policy.backoff(42, 1));
        // Jitter separates requests on the same attempt number.
        assert!((0..32).any(|id| policy.backoff(id, 1) != policy.backoff(id + 32, 1)));
        for attempt in 1..=10 {
            let delay = policy.backoff(7, attempt);
            // Equal-jitter bounds: [step/2, step] with step capped.
            let step = policy
                .base_backoff
                .saturating_mul(1 << (attempt - 1).min(16))
                .min(policy.max_backoff);
            assert!(
                delay >= step / 2 && delay <= step,
                "attempt {attempt}: {delay:?}"
            );
            assert!(delay <= policy.max_backoff);
        }
    }

    #[test]
    fn budget_refills_by_tenths_and_withdraws_whole_tokens() {
        let budget = RetryBudget::new(2);
        assert_eq!(budget.balance_tenths(), 20);
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        // Empty: no retry allowed.
        assert!(!budget.try_withdraw());
        // Nine successes are not enough for one retry; the tenth is.
        for _ in 0..9 {
            budget.deposit();
        }
        assert!(!budget.try_withdraw());
        budget.deposit();
        assert!(budget.try_withdraw());
        // Deposits saturate at capacity.
        for _ in 0..1000 {
            budget.deposit();
        }
        assert_eq!(budget.balance_tenths(), 20);
    }
}
