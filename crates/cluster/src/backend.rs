//! Per-backend state: address, circuit breaker, rendezvous placement.
//!
//! # Circuit breaker
//!
//! Each backend carries a three-state breaker:
//!
//! * **Closed** — healthy; eligible for dispatch.
//! * **Open** — `failure_threshold` consecutive failures tripped it; no
//!   requests are routed here.  After `open_cooldown` the health prober
//!   moves it to half-open.
//! * **Half-open** — still excluded from dispatch, but the prober sends
//!   trial pings; one success closes the breaker (readmission), one
//!   failure re-opens it and restarts the cooldown.
//!
//! Requests never probe an open circuit themselves — only the prober
//! does — so a dead backend costs the cluster one ping per
//! `health_interval` instead of one timeout per request.
//!
//! # Rendezvous placement
//!
//! Replica sets come from highest-random-weight (rendezvous) hashing of
//! `(fingerprint, backend)` through the platform-stable
//! [`StableHasher`](crosslight_neural::fingerprint::StableHasher): every
//! router instance, on any platform, derives the same preference order
//! for a key, and removing a backend only reassigns the keys that lived
//! on it.  The order is *health-independent*; health is applied at
//! dispatch time so a recovered backend slots back into exactly the
//! shards it owned before.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crosslight_neural::fingerprint::fingerprint;

/// The observable states of a backend's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: requests are routed here.
    Closed,
    /// Tripped: excluded from routing until the cooldown elapses.
    Open,
    /// Probation: excluded from routing, but health probes may readmit it.
    HalfOpen,
    /// Probe succeeded and a warm-state handoff is in flight: still
    /// excluded from routing until the handoff completes (or falls back
    /// cold), so the first readmitted request never races the restore.
    Warming,
}

impl CircuitState {
    /// Stable wire/metric name (`closed`, `open`, `half_open`, `warming`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Closed => "closed",
            Self::Open => "open",
            Self::HalfOpen => "half_open",
            Self::Warming => "warming",
        }
    }

    /// Gauge encoding: closed = 0, open = 1, half-open = 2, warming = 3.
    #[must_use]
    pub fn as_gauge(self) -> i64 {
        match self {
            Self::Closed => 0,
            Self::Open => 1,
            Self::HalfOpen => 2,
            Self::Warming => 3,
        }
    }

    fn from_u8(value: u8) -> Self {
        match value {
            1 => Self::Open,
            2 => Self::HalfOpen,
            3 => Self::Warming,
            _ => Self::Closed,
        }
    }
}

/// What a circuit transition changed, so the caller can count it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The state did not change.
    None,
    /// The breaker tripped (→ open).
    Opened,
    /// The cooldown elapsed (open → half-open).
    Probation,
    /// A half-open probe succeeded (→ closed): the backend is readmitted.
    Readmitted,
}

/// One backend's mutable state.  I/O lives in the router; this is pure
/// bookkeeping, so it can be unit-tested without sockets.
#[derive(Debug)]
pub struct BackendState {
    /// Index in the router's backend list (also the routing identity —
    /// rendezvous hashes the index, so a restarted backend keeps its
    /// shards even on a new address).
    pub index: usize,
    addr: Mutex<SocketAddr>,
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    /// Instant the breaker last opened; meaningful only while open.
    opened_at: Mutex<Instant>,
    /// Connection epoch: bumped when the breaker opens or the address
    /// changes, so exchange workers drop pooled connections minted before
    /// the outage instead of blaming the recovered backend for writes to
    /// a socket its dead predecessor owned.
    generation: AtomicU64,
    failure_threshold: u32,
    open_cooldown: Duration,
}

impl BackendState {
    /// A closed-circuit backend at `addr`.
    #[must_use]
    pub fn new(
        index: usize,
        addr: SocketAddr,
        failure_threshold: u32,
        open_cooldown: Duration,
    ) -> Self {
        Self {
            index,
            addr: Mutex::new(addr),
            state: AtomicU8::new(0),
            consecutive_failures: AtomicU32::new(0),
            opened_at: Mutex::new(Instant::now()),
            generation: AtomicU64::new(0),
            failure_threshold: failure_threshold.max(1),
            open_cooldown,
        }
    }

    /// The current dial address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        *self.addr.lock().expect("backend addr lock poisoned")
    }

    /// Repoints the backend (e.g. a process restarted on a new ephemeral
    /// port).  Routing identity — the index — is unchanged; the breaker is
    /// left as-is, so a dead backend is still readmitted through half-open
    /// probing rather than trusted immediately.
    pub fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock().expect("backend addr lock poisoned") = addr;
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// The current connection epoch.  A pooled connection stamped with an
    /// older generation predates the last outage or re-address and must
    /// be discarded, not written to.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The breaker's current state.
    #[must_use]
    pub fn state(&self) -> CircuitState {
        CircuitState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Whether dispatch may route a request here.
    #[must_use]
    pub fn available(&self) -> bool {
        self.state() == CircuitState::Closed
    }

    fn set_state(&self, state: CircuitState) {
        self.state.store(state.as_gauge() as u8, Ordering::Release);
    }

    /// Records a failed exchange (transport fault or failed probe).
    pub fn record_failure(&self) -> Transition {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        match self.state() {
            CircuitState::Closed if failures >= self.failure_threshold => self.open(),
            // A half-open backend that fails its probe — or a warming one
            // whose handoff collapsed under it — goes straight back to
            // open and restarts the cooldown.
            CircuitState::HalfOpen | CircuitState::Warming => self.open(),
            _ => Transition::None,
        }
    }

    fn open(&self) -> Transition {
        self.set_state(CircuitState::Open);
        *self
            .opened_at
            .lock()
            .expect("backend opened_at lock poisoned") = Instant::now();
        self.generation.fetch_add(1, Ordering::AcqRel);
        Transition::Opened
    }

    /// Records a successful exchange (request answered or probe ponged).
    pub fn record_success(&self) -> Transition {
        self.consecutive_failures.store(0, Ordering::Release);
        match self.state() {
            CircuitState::HalfOpen => {
                self.set_state(CircuitState::Closed);
                Transition::Readmitted
            }
            _ => Transition::None,
        }
    }

    /// Claims a successful half-open probe for a warm handoff: half-open
    /// becomes warming, and the backend keeps taking no traffic until
    /// [`BackendState::complete_warming`].  Returns `false` if the
    /// breaker was not half-open (e.g. a concurrent probe already
    /// readmitted it).
    pub fn begin_warming(&self) -> bool {
        self.state
            .compare_exchange(
                CircuitState::HalfOpen.as_gauge() as u8,
                CircuitState::Warming.as_gauge() as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Completes a warm handoff (whether the state transfer succeeded or
    /// fell back cold): a warming backend closes and takes traffic again.
    pub fn complete_warming(&self) -> Transition {
        if self
            .state
            .compare_exchange(
                CircuitState::Warming.as_gauge() as u8,
                CircuitState::Closed.as_gauge() as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            self.consecutive_failures.store(0, Ordering::Release);
            return Transition::Readmitted;
        }
        Transition::None
    }

    /// Moves an open breaker whose cooldown has elapsed into half-open;
    /// called by the health prober each tick.
    pub fn tick_probation(&self) -> Transition {
        if self.state() == CircuitState::Open {
            let opened_at = *self
                .opened_at
                .lock()
                .expect("backend opened_at lock poisoned");
            if opened_at.elapsed() >= self.open_cooldown {
                self.set_state(CircuitState::HalfOpen);
                return Transition::Probation;
            }
        }
        Transition::None
    }
}

/// Backend indices ordered by rendezvous weight for `key_fingerprint`,
/// highest first.  The first `replication` entries are the key's replica
/// set; the rest are the spillover order when replicas are down.
#[must_use]
pub fn rendezvous_order(key_fingerprint: u64, backends: usize) -> Vec<usize> {
    let mut weighted: Vec<(u64, usize)> = (0..backends)
        .map(|index| (fingerprint(&(key_fingerprint, index as u64)), index))
        .collect();
    // Sort by weight descending; the index tiebreak is unreachable for
    // distinct indices but keeps the order total.
    weighted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    weighted.into_iter().map(|(_, index)| index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_backend(threshold: u32, cooldown: Duration) -> BackendState {
        BackendState::new(0, "127.0.0.1:1".parse().unwrap(), threshold, cooldown)
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let backend = test_backend(3, Duration::from_millis(0));
        assert_eq!(backend.state(), CircuitState::Closed);
        assert_eq!(backend.record_failure(), Transition::None);
        assert_eq!(backend.record_failure(), Transition::None);
        assert_eq!(backend.record_failure(), Transition::Opened);
        assert_eq!(backend.state(), CircuitState::Open);
        assert!(!backend.available());
        // Zero cooldown: the next tick starts probation.
        assert_eq!(backend.tick_probation(), Transition::Probation);
        assert_eq!(backend.state(), CircuitState::HalfOpen);
        assert!(
            !backend.available(),
            "half-open backends take probes, not traffic"
        );
        assert_eq!(backend.record_success(), Transition::Readmitted);
        assert_eq!(backend.state(), CircuitState::Closed);
        assert!(backend.available());
    }

    #[test]
    fn failed_probe_reopens_a_half_open_breaker() {
        let backend = test_backend(1, Duration::from_millis(0));
        assert_eq!(backend.record_failure(), Transition::Opened);
        assert_eq!(backend.tick_probation(), Transition::Probation);
        assert_eq!(backend.record_failure(), Transition::Opened);
        assert_eq!(backend.state(), CircuitState::Open);
    }

    #[test]
    fn cooldown_gates_probation() {
        let backend = test_backend(1, Duration::from_secs(3600));
        assert_eq!(backend.record_failure(), Transition::Opened);
        assert_eq!(backend.tick_probation(), Transition::None);
        assert_eq!(backend.state(), CircuitState::Open);
    }

    #[test]
    fn successes_reset_the_failure_streak() {
        let backend = test_backend(3, Duration::from_millis(0));
        for _ in 0..10 {
            assert_eq!(backend.record_failure(), Transition::None);
            assert_eq!(backend.record_success(), Transition::None);
            assert_eq!(backend.record_failure(), Transition::None);
            assert_eq!(backend.record_success(), Transition::None);
        }
        assert_eq!(backend.state(), CircuitState::Closed);
    }

    #[test]
    fn generation_bumps_on_open_and_readdress_but_not_on_recovery() {
        let backend = test_backend(1, Duration::from_millis(0));
        let initial = backend.generation();
        assert_eq!(backend.record_failure(), Transition::Opened);
        assert_eq!(
            backend.generation(),
            initial + 1,
            "opening the breaker must invalidate pooled connections"
        );
        assert_eq!(backend.tick_probation(), Transition::Probation);
        assert_eq!(backend.record_success(), Transition::Readmitted);
        assert_eq!(
            backend.generation(),
            initial + 1,
            "readmission itself mints no new epoch — fresh dials already \
             carry the post-outage generation"
        );
        backend.set_addr("127.0.0.1:2".parse().unwrap());
        assert_eq!(backend.generation(), initial + 2);
    }

    #[test]
    fn warming_walks_half_open_to_closed_exactly_once() {
        let backend = test_backend(1, Duration::from_millis(0));
        assert_eq!(backend.record_failure(), Transition::Opened);
        assert_eq!(backend.tick_probation(), Transition::Probation);
        assert!(backend.begin_warming());
        assert!(!backend.begin_warming(), "warming is claimed exactly once");
        assert_eq!(backend.state(), CircuitState::Warming);
        assert!(!backend.available(), "warming backends take no traffic");
        assert_eq!(backend.complete_warming(), Transition::Readmitted);
        assert_eq!(backend.complete_warming(), Transition::None);
        assert!(backend.available());
        // A handoff that collapses mid-warming re-opens the breaker.
        assert_eq!(backend.record_failure(), Transition::Opened);
        assert_eq!(backend.tick_probation(), Transition::Probation);
        assert!(backend.begin_warming());
        assert_eq!(backend.record_failure(), Transition::Opened);
        assert_eq!(backend.complete_warming(), Transition::None);
        assert_eq!(backend.state(), CircuitState::Open);
    }

    #[test]
    fn rendezvous_order_is_stable_total_and_minimally_disruptive() {
        let order = rendezvous_order(0xdead_beef, 5);
        assert_eq!(order, rendezvous_order(0xdead_beef, 5));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "a permutation of all backends");
        // Shrinking the pool only removes the dropped backend from the
        // order — the relative order of survivors is untouched (the HRW
        // minimal-disruption property).
        let shrunk = rendezvous_order(0xdead_beef, 4);
        let survivors: Vec<usize> = order.iter().copied().filter(|&b| b < 4).collect();
        assert_eq!(shrunk, survivors);
        // Different keys spread across different primaries somewhere.
        assert!(
            (0..64u64).any(|key| rendezvous_order(key, 5)[0] != order[0]),
            "primaries must vary by key"
        );
    }
}
