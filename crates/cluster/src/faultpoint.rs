//! Deterministic fault injection for the cluster tier.
//!
//! The chaos suite needs to break the router's view of its backends at
//! precise moments — a connection that dies mid-exchange, a response that
//! arrives corrupted, a health probe that stalls — and needs the breakage
//! to be *reproducible* so a failing run can be replayed from its seed.
//!
//! A [`FaultPlan`] is a list of [`FaultRule`]s, each naming an injection
//! point ([`FaultPoint`]), an optional backend filter, a firing pattern
//! ([`Firing`]) over that point's per-rule hit counter, and the
//! [`FaultAction`] to take when it fires.  The router consults the plan at
//! every named point; a plan built by [`FaultPlan::none`] never fires and
//! costs one relaxed load per check, so production paths carry the hooks
//! unconditionally.
//!
//! Determinism: rules fire as a pure function of (rule, hit number).  Hit
//! numbers are assigned in the order the router reaches the point, so a
//! single-connection, serial workload replays exactly; under concurrency
//! the *set* of decisions for a given interleaving is still seed-stable,
//! which is what the chaos suite's invariants (no lost accepted request,
//! bit-identical results) are written against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crosslight_neural::fingerprint::fingerprint;

/// A named point in the router where a fault may be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Immediately before the router writes a request line to a backend.
    BackendSend,
    /// Immediately after the router reads a response line from a backend.
    BackendRecv,
    /// Immediately before a health probe dials a backend.
    HealthProbe,
    /// Immediately before the router starts a warm-state handoff to a
    /// rejoining backend.  `Kill`/`Stall` abort the transfer outright;
    /// `Garble` corrupts the restore stream in flight so the rejoining
    /// backend rejects it with a typed error — either way the backend is
    /// readmitted cold, never wedged.
    Handoff,
}

impl FaultPoint {
    /// All injection points, for exhaustive tests and catalogs.
    pub const ALL: [Self; 4] = [
        Self::BackendSend,
        Self::BackendRecv,
        Self::HealthProbe,
        Self::Handoff,
    ];

    /// The catalog name of this point (`backend.send`, `backend.recv`,
    /// `health.probe`, `cluster.handoff`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::BackendSend => "backend.send",
            Self::BackendRecv => "backend.recv",
            Self::HealthProbe => "health.probe",
            Self::Handoff => "cluster.handoff",
        }
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Drop the backend connection on the floor, as if the peer died
    /// mid-exchange.  At `health.probe` the probe is failed outright.
    Kill,
    /// Sleep this many milliseconds *and then fail* the operation — a peer
    /// that hangs past its deadline.  The router's per-hop timeouts bound
    /// the stall; callers should keep it below the request deadline or the
    /// request is (correctly) shed.
    Stall(u64),
    /// Sleep this many milliseconds and then proceed normally — a slow but
    /// healthy peer.  Adds latency without an error.
    Slow(u64),
    /// Corrupt the line crossing the boundary (bytes are flipped into an
    /// undecodable frame), as if the stream desynchronized.
    Garble,
}

/// When a rule fires, as a function of the rule's own hit counter
/// (0-based: the first matching hit is hit 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Firing {
    /// Fire on hits `after .. after + times`.
    Window {
        /// Matching hits to skip before firing.
        after: u64,
        /// Consecutive hits to fire on once reached (`u64::MAX` = forever).
        times: u64,
    },
    /// Fire on every hit where `(hit + phase) % period == 0` — a seeded
    /// sprinkle; build one with [`FaultRule::periodic_seeded`].
    Periodic {
        /// Distance between firing hits (clamped to at least 1).
        period: u64,
        /// Offset of the first firing hit within the period.
        phase: u64,
    },
}

impl Firing {
    fn fires_on(self, hit: u64) -> bool {
        match self {
            Self::Window { after, times } => hit >= after && hit.saturating_sub(after) < times,
            Self::Periodic { period, phase } => {
                let period = period.max(1);
                (hit.wrapping_add(phase)) % period == 0
            }
        }
    }
}

/// One injection rule: where, which backend, when, and what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// The injection point this rule watches.
    pub point: FaultPoint,
    /// Restrict to one backend index, or `None` for any backend.
    pub backend: Option<usize>,
    /// The firing pattern over this rule's hit counter.
    pub firing: Firing,
    /// The action taken when the rule fires.
    pub action: FaultAction,
}

impl FaultRule {
    /// A rule that fires exactly once, on the `nth` (0-based) matching hit.
    #[must_use]
    pub fn once(point: FaultPoint, backend: Option<usize>, nth: u64, action: FaultAction) -> Self {
        Self {
            point,
            backend,
            firing: Firing::Window {
                after: nth,
                times: 1,
            },
            action,
        }
    }

    /// A rule that fires on every matching hit.
    #[must_use]
    pub fn always(point: FaultPoint, backend: Option<usize>, action: FaultAction) -> Self {
        Self {
            point,
            backend,
            firing: Firing::Window {
                after: 0,
                times: u64::MAX,
            },
            action,
        }
    }

    /// A rule that fires once every `period` matching hits, at a phase
    /// offset derived deterministically from `seed` — the building block
    /// of seeded chaos sweeps: the same seed always garbles the same hits.
    #[must_use]
    pub fn periodic_seeded(
        point: FaultPoint,
        backend: Option<usize>,
        period: u64,
        seed: u64,
        action: FaultAction,
    ) -> Self {
        let period = period.max(1);
        let phase = fingerprint(&(seed, point.as_str(), backend)) % period;
        Self {
            point,
            backend,
            firing: Firing::Periodic { period, phase },
            action,
        }
    }
}

/// A shared, concurrency-safe set of fault rules with per-rule hit
/// counters and an injected-faults counter.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<(FaultRule, AtomicU64)>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// The empty plan: every [`check`](Self::check) returns `None`.
    #[must_use]
    pub fn none() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A plan executing the given rules.  Rules are checked in order and
    /// the *first* firing rule wins, so put specific rules before broad
    /// ones.
    #[must_use]
    pub fn new(rules: Vec<FaultRule>) -> Arc<Self> {
        Arc::new(Self {
            rules: rules
                .into_iter()
                .map(|rule| (rule, AtomicU64::new(0)))
                .collect(),
            injected: AtomicU64::new(0),
        })
    }

    /// Consults the plan at `point` for `backend`.  Every matching rule's
    /// hit counter advances (so rule windows are independent of each
    /// other); the first rule that fires decides the action.
    pub fn check(&self, point: FaultPoint, backend: usize) -> Option<FaultAction> {
        if self.rules.is_empty() {
            return None;
        }
        let mut fired: Option<FaultAction> = None;
        for (rule, hits) in &self.rules {
            if rule.point != point || rule.backend.is_some_and(|b| b != backend) {
                continue;
            }
            let hit = hits.fetch_add(1, Ordering::SeqCst);
            if fired.is_none() && rule.firing.fires_on(hit) {
                fired = Some(rule.action);
            }
        }
        if fired.is_some() {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Total faults injected so far — the chaos suite asserts this is
    /// nonzero to prove the plan actually exercised the failure paths.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Flips `line` into a string that can never decode as a protocol
    /// frame, deterministically from its content — the `Garble` payload.
    #[must_use]
    pub fn garble_line(line: &str) -> String {
        format!("\u{7f}garbled:{:016x}\u{7f}", fingerprint(&line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rules_fire_on_exactly_their_hits() {
        let plan = FaultPlan::new(vec![FaultRule::once(
            FaultPoint::BackendSend,
            Some(1),
            2,
            FaultAction::Kill,
        )]);
        // Wrong backend never advances the matching counter.
        assert_eq!(plan.check(FaultPoint::BackendSend, 0), None);
        // Hits 0 and 1 pass, hit 2 fires, hit 3 passes again.
        assert_eq!(plan.check(FaultPoint::BackendSend, 1), None);
        assert_eq!(plan.check(FaultPoint::BackendSend, 1), None);
        assert_eq!(
            plan.check(FaultPoint::BackendSend, 1),
            Some(FaultAction::Kill)
        );
        assert_eq!(plan.check(FaultPoint::BackendSend, 1), None);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn always_rules_fire_on_every_matching_hit_and_points_are_disjoint() {
        let plan = FaultPlan::new(vec![FaultRule::always(
            FaultPoint::HealthProbe,
            None,
            FaultAction::Garble,
        )]);
        for backend in 0..4 {
            assert_eq!(
                plan.check(FaultPoint::HealthProbe, backend),
                Some(FaultAction::Garble)
            );
        }
        assert_eq!(plan.check(FaultPoint::BackendRecv, 0), None);
        assert_eq!(plan.injected(), 4);
    }

    #[test]
    fn periodic_seeded_rules_are_deterministic_per_seed() {
        let fire_pattern = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(vec![FaultRule::periodic_seeded(
                FaultPoint::BackendRecv,
                None,
                5,
                seed,
                FaultAction::Slow(1),
            )]);
            (0..20)
                .map(|_| plan.check(FaultPoint::BackendRecv, 0).is_some())
                .collect()
        };
        let a = fire_pattern(7);
        assert_eq!(a, fire_pattern(7), "same seed must replay identically");
        assert_eq!(
            a.iter().filter(|&&fired| fired).count(),
            4,
            "period 5 over 20 hits"
        );
        // Some seed shifts the phase; find one rather than hard-coding.
        assert!(
            (0..64).any(|seed| fire_pattern(seed) != a),
            "phase must depend on the seed"
        );
    }

    #[test]
    fn garbled_lines_never_decode() {
        let garbled = FaultPlan::garble_line("{\"v\":1,\"id\":3,\"op\":\"ping\"}");
        assert!(crosslight_server::wire::decode_response(&garbled).is_err());
        assert!(crosslight_server::wire::decode_request(&garbled).is_err());
    }

    #[test]
    fn empty_plan_is_free_of_fire() {
        let plan = FaultPlan::none();
        for point in FaultPoint::ALL {
            assert_eq!(plan.check(point, 0), None);
        }
        assert_eq!(plan.injected(), 0);
    }
}
