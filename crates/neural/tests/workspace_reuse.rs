//! Proves the layers' workspace reuse: after a warm-up call has grown every
//! internal buffer to its steady-state size, forward/backward passes and the
//! whole training step perform **zero heap allocations**.
//!
//! A counting global allocator wraps the system allocator; the tests read
//! the allocation counter around the steady-state calls.  Everything runs
//! inside a single `#[test]` so no concurrent test can perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use crosslight_neural::layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Relu};
use crosslight_neural::metrics::cross_entropy_with_grad_into;
use crosslight_neural::model::Sequential;
use crosslight_neural::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn steady_state_passes_allocate_nothing() {
    let mut rng = StdRng::seed_from_u64(5);

    // Conv2d alone: the acceptance-critical case.
    let mut conv = Conv2d::new(3, 16, 3, 1, &mut rng).unwrap();
    let x = Tensor::random_uniform(vec![3, 32, 32], 1.0, &mut rng);
    let g = Tensor::random_uniform(vec![16, 30, 30], 1.0, &mut rng);
    let mut out = Tensor::default();
    let mut dx = Tensor::default();
    // Warm-up grows the workspaces (im2col scratch, gradient buffers).
    for _ in 0..2 {
        conv.forward_into(&x, &mut out).unwrap();
        conv.backward_into(&g, &mut dx).unwrap();
    }
    let (count, ()) = allocations_during(|| {
        conv.forward_into(&x, &mut out).unwrap();
    });
    assert_eq!(
        count, 0,
        "Conv2d::forward_into must not allocate in steady state"
    );
    let (count, ()) = allocations_during(|| {
        conv.backward_into(&g, &mut dx).unwrap();
        conv.apply_gradients(0.01);
    });
    assert_eq!(
        count, 0,
        "Conv2d backward/update must not allocate in steady state"
    );

    // Dense alone (the old forward cloned its input every call).
    let mut dense = Dense::new(64, 10, &mut rng).unwrap();
    let xd = Tensor::random_uniform(vec![64], 1.0, &mut rng);
    let gd = Tensor::random_uniform(vec![10], 1.0, &mut rng);
    for _ in 0..2 {
        dense.forward_into(&xd, &mut out).unwrap();
        dense.backward_into(&gd, &mut dx).unwrap();
    }
    let (count, ()) = allocations_during(|| {
        dense.forward_into(&xd, &mut out).unwrap();
        dense.backward_into(&gd, &mut dx).unwrap();
    });
    assert_eq!(count, 0, "Dense passes must not allocate in steady state");

    // A full model: conv → relu → pool → flatten → dense, through the
    // Sequential ping-pong buffers, including the loss gradient.
    let mut model = Sequential::new("alloc_probe", vec![3, 12, 12]);
    model.push(Box::new(Conv2d::new(3, 8, 3, 1, &mut rng).unwrap()));
    model.push(Box::new(Relu::new()));
    model.push(Box::new(MaxPool2d::new(2).unwrap()));
    model.push(Box::new(Flatten::new()));
    model.push(Box::new(Dense::new(8 * 5 * 5, 10, &mut rng).unwrap()));
    let sample = Tensor::random_uniform(vec![3, 12, 12], 1.0, &mut rng);
    let mut logits = Tensor::default();
    let mut grad = Tensor::default();
    let mut grad_sink = Tensor::default();
    for _ in 0..2 {
        model.forward_into(&sample, &mut logits).unwrap();
        cross_entropy_with_grad_into(&logits, 3, &mut grad);
        model.backward_into(&grad, &mut grad_sink).unwrap();
        model.apply_gradients(0.01);
    }
    let (count, ()) = allocations_during(|| {
        model.forward_into(&sample, &mut logits).unwrap();
        cross_entropy_with_grad_into(&logits, 3, &mut grad);
        model.backward_into(&grad, &mut grad_sink).unwrap();
        model.apply_gradients(0.01);
    });
    assert_eq!(
        count, 0,
        "a full training step must not allocate in steady state"
    );
}
