//! Property-based tests for the neural-network substrate.

use crosslight_neural::layers::softmax;
use crosslight_neural::quant::QuantConfig;
use crosslight_neural::tensor::{im2col, im2col_into, im2col_transposed_into, reference};
use crosslight_neural::tensor::{Im2colSpec, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing small random matrices as (rows, cols, data).
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c).prop_map(move |data| (r, c, data))
    })
}

proptest! {
    /// Matrix multiplication by the identity is the identity.
    #[test]
    fn matmul_identity((r, c, data) in matrix_strategy(6)) {
        let a = Tensor::from_vec(vec![r, c], data).unwrap();
        let mut identity = Tensor::zeros(vec![c, c]);
        for i in 0..c {
            identity.set2(i, i, 1.0);
        }
        let product = a.matmul(&identity).unwrap();
        for (x, y) in a.as_slice().iter().zip(product.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Transposing twice is the identity, and (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_laws((r, c, data) in matrix_strategy(5), k in 1usize..5) {
        let a = Tensor::from_vec(vec![r, c], data).unwrap();
        prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a.clone());
        let mut rng = StdRng::seed_from_u64(k as u64);
        let b = Tensor::random_uniform(vec![c, k], 1.0, &mut rng);
        let left = a.matmul(&b).unwrap().transpose().unwrap();
        let right = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax output is a probability distribution and order-preserving.
    #[test]
    fn softmax_is_a_distribution(values in proptest::collection::vec(-20.0f32..20.0, 2..16)) {
        let logits = Tensor::from_vec(vec![values.len()], values.clone()).unwrap();
        let probs = softmax(&logits);
        let sum: f32 = probs.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(probs.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert_eq!(probs.argmax(), logits.argmax());
    }

    /// Quantization error is bounded by one step of the grid, and the number
    /// of distinct values never exceeds the number of representable levels.
    #[test]
    fn quantization_error_and_levels(
        values in proptest::collection::vec(-3.0f32..3.0, 4..128),
        bits in 1u32..12,
    ) {
        let quant = QuantConfig::uniform(bits);
        let original = Tensor::from_vec(vec![values.len()], values.clone()).unwrap();
        let quantized = quant.quantize_activations(&original);
        let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if max_abs > 0.0 {
            let step = max_abs / (1u64 << (bits - 1)) as f32;
            for (a, b) in values.iter().zip(quantized.as_slice()) {
                prop_assert!((a - b).abs() <= step + 1e-5);
            }
        }
        let mut distinct: Vec<i64> = quantized
            .as_slice()
            .iter()
            .map(|v| (v * 1e6) as i64)
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(distinct.len() as u64 <= (1u64 << bits));
    }

    /// The cache-blocked matmul is **bit-identical** to the naive unblocked
    /// triple loop, across shapes that straddle the 64-wide k-panel
    /// boundary.  Exact `==` on the raw f32 data — no tolerance.
    #[test]
    fn blocked_matmul_is_bit_identical_to_naive(
        (m, n) in (1usize..=12, 1usize..=12),
        k in 1usize..=150,
        seed in 0u64..1024,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::random_uniform(vec![m, k], 2.0, &mut rng);
        let b = Tensor::random_uniform(vec![k, n], 2.0, &mut rng);
        let naive = reference::matmul_naive(&a, &b).unwrap();
        prop_assert_eq!(a.matmul(&b).unwrap(), naive.clone());
        // The destination-buffer form, run twice into a reused (stale)
        // buffer, stays bit-identical.
        let mut out = Tensor::full(vec![3, 3], f32::NAN);
        a.matmul_into(&b, &mut out).unwrap();
        prop_assert_eq!(out.clone(), naive.clone());
        a.matmul_into(&b, &mut out).unwrap();
        prop_assert_eq!(out, naive);
    }

    /// Both fused-transpose kernels are bit-identical to transposing
    /// explicitly and running the naive matmul.
    #[test]
    fn fused_transpose_kernels_are_bit_identical_to_naive(
        (m, n) in (1usize..=10, 1usize..=10),
        k in 1usize..=96,
        seed in 0u64..1024,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        // A·Bᵀ with A: [m, k], B: [n, k].
        let a = Tensor::random_uniform(vec![m, k], 2.0, &mut rng);
        let b = Tensor::random_uniform(vec![n, k], 2.0, &mut rng);
        let expected = reference::matmul_naive(&a, &b.transpose().unwrap()).unwrap();
        prop_assert_eq!(a.matmul_transpose_b(&b).unwrap(), expected);
        // Aᵀ·C with A: [k, m], C: [k, n] (n == 1 covers the dense-backward
        // fast path whenever n is drawn as 1).
        let a = Tensor::random_uniform(vec![k, m], 2.0, &mut rng);
        let c = Tensor::random_uniform(vec![k, n], 2.0, &mut rng);
        let expected = reference::matmul_naive(&a.transpose().unwrap(), &c).unwrap();
        prop_assert_eq!(a.transpose_a_matmul(&c).unwrap(), expected);
    }

    /// The slice-copying im2col (and its fused-transpose variant) relocate
    /// exactly the same bits as the naive element-at-a-time reference.
    #[test]
    fn blocked_im2col_is_bit_identical_to_naive(
        channels in 1usize..=3,
        height in 1usize..=12,
        width in 1usize..=12,
        kernel in 1usize..=4,
        stride in 1usize..=3,
        seed in 0u64..1024,
    ) {
        // Only run geometries that produce a non-empty output.
        if height >= kernel && width >= kernel {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc01);
            let input = Tensor::random_uniform(vec![channels, height, width], 2.0, &mut rng);
            let spec = Im2colSpec { in_channels: channels, height, width, kernel, stride };
            let naive = reference::im2col_naive(&input, &spec).unwrap();
            prop_assert_eq!(im2col(&input, &spec).unwrap(), naive.clone());
            let mut out = Tensor::full(vec![2], f32::NAN);
            im2col_into(&input, &spec, &mut out).unwrap();
            prop_assert_eq!(out.clone(), naive.clone());
            im2col_transposed_into(&input, &spec, &mut out).unwrap();
            prop_assert_eq!(out, naive.transpose().unwrap());
        }
    }

    /// im2col preserves every input element when the stride equals the kernel
    /// (non-overlapping patches cover the input exactly).
    #[test]
    fn im2col_partitions_input(
        channels in 1usize..3,
        tiles in 1usize..4,
        kernel in 1usize..3,
    ) {
        let height = tiles * kernel;
        let width = tiles * kernel;
        let count = channels * height * width;
        let data: Vec<f32> = (0..count).map(|i| i as f32).collect();
        let input = Tensor::from_vec(vec![channels, height, width], data.clone()).unwrap();
        let spec = Im2colSpec {
            in_channels: channels,
            height,
            width,
            kernel,
            stride: kernel,
        };
        let cols = im2col(&input, &spec).unwrap();
        let mut seen: Vec<f32> = cols.as_slice().to_vec();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expected = data;
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(seen, expected);
    }
}
