//! Uniform symmetric fake-quantization of weights and activations.
//!
//! The paper's Fig. 5 sweeps weight/activation resolution from 1 to 16 bits
//! (using QKeras quantization-aware training) and shows how model accuracy
//! collapses below a model-dependent threshold.  This module provides the
//! quantizer used to reproduce that study: values are snapped to a uniform
//! symmetric grid whose scale is the tensor's absolute maximum.

use serde::{Deserialize, Serialize};

use crate::layers::fake_quantize_slice;
use crate::tensor::Tensor;

/// Weight/activation bit-width configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Bits used for weights and biases.
    pub weight_bits: u32,
    /// Bits used for activations.
    pub activation_bits: u32,
}

impl QuantConfig {
    /// Creates a configuration with distinct weight and activation widths.
    #[must_use]
    pub fn new(weight_bits: u32, activation_bits: u32) -> Self {
        Self {
            weight_bits,
            activation_bits,
        }
    }

    /// Creates a configuration using the same width for weights and
    /// activations, as the paper's Fig. 5 does.
    #[must_use]
    pub fn uniform(bits: u32) -> Self {
        Self::new(bits, bits)
    }

    /// Quantizes an activation tensor to `activation_bits`.
    #[must_use]
    pub fn quantize_activations(&self, tensor: &Tensor) -> Tensor {
        let mut out = tensor.clone();
        self.quantize_activations_in_place(&mut out);
        out
    }

    /// Quantizes an activation tensor to `activation_bits` in place,
    /// allocation-free (used by the quantized forward pass on its reused
    /// activation buffers).
    pub fn quantize_activations_in_place(&self, tensor: &mut Tensor) {
        fake_quantize_slice(tensor.as_mut_slice(), self.activation_bits);
    }

    /// Quantizes a standalone value vector to `weight_bits` (used by tests and
    /// by callers that hold raw parameter slices).
    #[must_use]
    pub fn quantize_weights_vec(&self, values: &[f32]) -> Vec<f32> {
        let mut out = values.to_vec();
        fake_quantize_slice(&mut out, self.weight_bits);
        out
    }

    /// Number of representable levels for the weight grid.
    #[must_use]
    pub fn weight_levels(&self) -> u64 {
        if self.weight_bits >= 63 {
            u64::MAX
        } else {
            1u64 << self.weight_bits
        }
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        // The paper's headline CrossLight resolution.
        Self::uniform(16)
    }
}

/// Worst-case quantization error (half a step) for values in `[-max_abs,
/// max_abs]` quantized to `bits`.
#[must_use]
pub fn quantization_error_bound(max_abs: f32, bits: u32) -> f32 {
    if bits == 0 {
        return max_abs;
    }
    if bits >= 24 {
        return 0.0;
    }
    let levels = (1u64 << (bits - 1)) as f32;
    max_abs / levels / 2.0 + max_abs / levels * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_config_sets_both_widths() {
        let q = QuantConfig::uniform(8);
        assert_eq!(q.weight_bits, 8);
        assert_eq!(q.activation_bits, 8);
        assert_eq!(q.weight_levels(), 256);
        assert_eq!(QuantConfig::default().weight_bits, 16);
    }

    #[test]
    fn activation_quantization_respects_error_bound() {
        let values: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.21).sin()).collect();
        let t = Tensor::from_vec(vec![64], values.clone()).unwrap();
        for bits in [2u32, 4, 8, 12] {
            let q = QuantConfig::uniform(bits);
            let out = q.quantize_activations(&t);
            let bound = quantization_error_bound(1.0, bits);
            for (a, b) in values.iter().zip(out.as_slice()) {
                assert!(
                    (a - b).abs() <= bound + 1e-6,
                    "{bits}-bit error {} exceeds bound {bound}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn error_shrinks_monotonically_with_bits() {
        let mut previous = f32::INFINITY;
        for bits in 1..=16 {
            let bound = quantization_error_bound(1.0, bits);
            assert!(bound < previous);
            previous = bound;
        }
        assert_eq!(quantization_error_bound(1.0, 24), 0.0);
        assert_eq!(quantization_error_bound(0.7, 0), 0.7);
    }

    #[test]
    fn weight_vec_quantization_is_consistent_with_activation_path() {
        let values: Vec<f32> = vec![0.9, -0.4, 0.1, -0.05];
        let q = QuantConfig::uniform(3);
        let via_vec = q.quantize_weights_vec(&values);
        let via_tensor = q
            .quantize_activations(&Tensor::from_vec(vec![4], values).unwrap())
            .into_vec();
        assert_eq!(via_vec, via_tensor);
    }
}
