//! SGD training loop and quantized evaluation.
//!
//! Training exists to support the Fig. 5 reproduction: small surrogate models
//! are trained on the synthetic datasets, their parameters are fake-quantized
//! to 1–16 bits, and test accuracy is measured at each resolution.

use serde::{Deserialize, Serialize};

use crate::datasets::Dataset;
use crate::error::Result;
use crate::metrics::{accuracy, cross_entropy_with_grad_into};
use crate::model::Sequential;
use crate::quant::QuantConfig;
use crate::tensor::Tensor;

/// Hyperparameters of the SGD training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            learning_rate: 0.05,
            batch_size: 8,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub mean_loss: f64,
    /// Training accuracy over the epoch.
    pub train_accuracy: f64,
}

/// Trains a model in place with mini-batch SGD and cross-entropy loss.
///
/// # Errors
///
/// Propagates shape errors from the model's layers (e.g. when a dataset's
/// sample shape does not match the model's input shape).
pub fn train(
    model: &mut Sequential,
    data: &Dataset,
    config: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    let mut stats = Vec::with_capacity(config.epochs);
    // Sample-loop buffers, allocated once and reused for every sample of
    // every epoch: together with the layers' internal workspaces the hot
    // loop runs allocation-free in steady state.
    let mut logits = Tensor::default();
    let mut grad = Tensor::default();
    let mut grad_sink = Tensor::default();
    let mut predictions = Vec::with_capacity(data.len());
    for epoch in 0..config.epochs {
        let mut total_loss = 0.0f64;
        let mut in_batch = 0usize;
        predictions.clear();
        model.zero_gradients();
        for (sample, &label) in data.samples.iter().zip(&data.labels) {
            model.forward_into(sample, &mut logits)?;
            predictions.push(logits.argmax());
            let loss = cross_entropy_with_grad_into(&logits, label, &mut grad);
            total_loss += f64::from(loss);
            model.backward_into(&grad, &mut grad_sink)?;
            in_batch += 1;
            if in_batch == config.batch_size {
                model.apply_gradients(config.learning_rate / config.batch_size as f32);
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            model.apply_gradients(config.learning_rate / in_batch as f32);
        }
        stats.push(EpochStats {
            epoch,
            mean_loss: total_loss / data.len().max(1) as f64,
            train_accuracy: accuracy(&predictions, &data.labels),
        });
    }
    Ok(stats)
}

/// Evaluates full-precision test accuracy.
///
/// # Errors
///
/// Propagates shape errors from the model's layers.
pub fn evaluate(model: &mut Sequential, data: &Dataset) -> Result<f64> {
    let mut predictions = Vec::with_capacity(data.len());
    let mut logits = Tensor::default();
    for sample in &data.samples {
        model.forward_into(sample, &mut logits)?;
        predictions.push(logits.argmax());
    }
    Ok(accuracy(&predictions, &data.labels))
}

/// Evaluates test accuracy with weights and activations fake-quantized to the
/// given configuration.
///
/// The model's stored parameters are not modified: evaluation works on an
/// internally quantized copy of each layer's output, and the weight
/// quantization is applied to a cloned weight view via
/// [`Sequential::quantize_parameters`] on a caller-provided clone.  Because
/// [`Sequential`] owns boxed layers (not clonable in general), the caller is
/// expected to re-train or rebuild the model if it needs the original weights
/// afterwards; the experiment harness simply rebuilds per bit-width.
///
/// # Errors
///
/// Propagates shape errors from the model's layers.
pub fn evaluate_quantized(
    model: &mut Sequential,
    data: &Dataset,
    quant: &QuantConfig,
) -> Result<f64> {
    model.quantize_parameters(quant.weight_bits);
    let mut predictions = Vec::with_capacity(data.len());
    let mut logits = Tensor::default();
    for sample in &data.samples {
        model.forward_quantized_into(sample, quant, &mut logits)?;
        predictions.push(logits.argmax());
    }
    Ok(accuracy(&predictions, &data.labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate_synthetic, SyntheticSpec};
    use crate::layers::{Dense, Flatten, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_mlp(input: usize, classes: usize, seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = Sequential::new("mlp", vec![1, 8, 8]);
        model.push(Box::new(Flatten::new()));
        model.push(Box::new(Dense::new(input, 24, &mut rng).unwrap()));
        model.push(Box::new(Relu::new()));
        model.push(Box::new(Dense::new(24, classes, &mut rng).unwrap()));
        model
    }

    fn small_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = SyntheticSpec {
            channels: 1,
            height: 8,
            width: 8,
            num_classes: 4,
            samples_per_class: 12,
            difficulty: 0.3,
        };
        generate_synthetic(&spec, &mut rng).unwrap()
    }

    #[test]
    fn training_improves_accuracy_well_above_chance() {
        let data = small_dataset(10);
        let (train_split, test_split) = data.split(0.75);
        let mut model = small_mlp(64, 4, 20);
        let stats = train(
            &mut model,
            &train_split,
            &TrainConfig {
                epochs: 15,
                learning_rate: 0.1,
                batch_size: 4,
            },
        )
        .unwrap();
        assert_eq!(stats.len(), 15);
        assert!(stats.last().unwrap().train_accuracy > 0.8);
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
        let test_acc = evaluate(&mut model, &test_split).unwrap();
        assert!(
            test_acc > 0.5,
            "test accuracy {test_acc} should beat 0.25 chance"
        );
    }

    #[test]
    fn one_bit_quantization_degrades_accuracy() {
        let data = small_dataset(30);
        let (train_split, test_split) = data.split(0.75);
        let mut model = small_mlp(64, 4, 40);
        train(&mut model, &train_split, &TrainConfig::default()).unwrap();
        let full = evaluate(&mut model, &test_split).unwrap();
        // High-precision quantization barely changes anything.
        let mut model_16 = small_mlp(64, 4, 40);
        train(&mut model_16, &train_split, &TrainConfig::default()).unwrap();
        let q16 =
            evaluate_quantized(&mut model_16, &test_split, &QuantConfig::uniform(16)).unwrap();
        assert!((q16 - full).abs() < 0.15);
        // One-bit quantization collapses towards chance.
        let mut model_1 = small_mlp(64, 4, 40);
        train(&mut model_1, &train_split, &TrainConfig::default()).unwrap();
        let q1 = evaluate_quantized(&mut model_1, &test_split, &QuantConfig::uniform(1)).unwrap();
        assert!(
            q1 <= q16,
            "1-bit accuracy {q1} should not beat 16-bit {q16}"
        );
    }

    #[test]
    fn default_train_config_is_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0 && c.batch_size > 0 && c.learning_rate > 0.0);
    }
}
