//! Synthetic datasets standing in for the paper's training data.
//!
//! The paper trains its four models on Sign-MNIST, CIFAR-10, STL-10 and
//! Omniglot.  Those datasets are not shipped with this repository, so the
//! Fig. 5 quantization study is run on synthetic *class-cluster* image
//! datasets instead (see `DESIGN.md`, substitution table): each class gets a
//! random prototype image, and samples are noisy copies of their class
//! prototype.  Two knobs make the stand-ins behave like their originals:
//!
//! * the **input geometry and class count** match the original dataset, and
//! * a **difficulty** level (noise relative to prototype separation) orders
//!   the datasets the same way the originals are ordered in Fig. 5 — STL-10
//!   is the hardest and the most resolution-sensitive, Sign-MNIST the
//!   easiest.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{NeuralError, Result};
use crate::tensor::Tensor;

/// A labelled set of image samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Per-sample `[C, H, W]` images.
    pub samples: Vec<Tensor>,
    /// Per-sample class labels.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// Shape of every sample.
    pub sample_shape: Vec<usize>,
}

impl Dataset {
    /// Returns the number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits the dataset into a training and a test partition, with
    /// `train_fraction` of the samples (rounded down) in the training split.
    #[must_use]
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        let train_len = ((self.len() as f64) * train_fraction).floor() as usize;
        let make = |range: std::ops::Range<usize>| Dataset {
            samples: self.samples[range.clone()].to_vec(),
            labels: self.labels[range].to_vec(),
            num_classes: self.num_classes,
            sample_shape: self.sample_shape.clone(),
        };
        (make(0..train_len), make(train_len..self.len()))
    }
}

/// Specification of a synthetic class-cluster dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of channels of each image.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Noise amplitude relative to the unit prototype amplitude; larger means
    /// a harder dataset.
    pub difficulty: f64,
}

impl SyntheticSpec {
    /// Stand-in for Sign-MNIST: small grayscale images, 24 classes, easy.
    #[must_use]
    pub fn sign_mnist_like(samples_per_class: usize) -> Self {
        Self {
            channels: 1,
            height: 12,
            width: 12,
            num_classes: 8,
            samples_per_class,
            difficulty: 0.35,
        }
    }

    /// Stand-in for CIFAR-10: small RGB images, 10 classes, moderate.
    #[must_use]
    pub fn cifar10_like(samples_per_class: usize) -> Self {
        Self {
            channels: 3,
            height: 12,
            width: 12,
            num_classes: 10,
            samples_per_class,
            difficulty: 0.55,
        }
    }

    /// Stand-in for STL-10: RGB images, 10 classes, hard (the most
    /// resolution-sensitive model in Fig. 5).
    #[must_use]
    pub fn stl10_like(samples_per_class: usize) -> Self {
        Self {
            channels: 3,
            height: 14,
            width: 14,
            num_classes: 10,
            samples_per_class,
            difficulty: 0.8,
        }
    }

    /// Stand-in for Omniglot one-shot classification: grayscale characters,
    /// many classes.
    #[must_use]
    pub fn omniglot_like(samples_per_class: usize) -> Self {
        Self {
            channels: 1,
            height: 14,
            width: 14,
            num_classes: 12,
            samples_per_class,
            difficulty: 0.5,
        }
    }

    /// Shape of each generated sample.
    #[must_use]
    pub fn sample_shape(&self) -> Vec<usize> {
        vec![self.channels, self.height, self.width]
    }
}

/// Generates a synthetic class-cluster dataset.
///
/// Each class receives a random prototype image with entries in `[-1, 1]`;
/// samples are the prototype plus Gaussian-ish noise of amplitude
/// `difficulty`.  Samples are interleaved across classes so truncating or
/// splitting the dataset keeps it balanced.
///
/// # Errors
///
/// Returns [`NeuralError::InvalidDataset`] if the spec has zero classes, zero
/// samples per class or an empty image shape.
pub fn generate_synthetic<R: Rng + ?Sized>(spec: &SyntheticSpec, rng: &mut R) -> Result<Dataset> {
    if spec.num_classes == 0 || spec.samples_per_class == 0 {
        return Err(NeuralError::InvalidDataset {
            reason: "need at least one class and one sample per class".into(),
        });
    }
    if spec.channels == 0 || spec.height == 0 || spec.width == 0 {
        return Err(NeuralError::InvalidDataset {
            reason: "sample shape must be non-empty".into(),
        });
    }
    let pixel_count = spec.channels * spec.height * spec.width;
    let prototypes: Vec<Vec<f32>> = (0..spec.num_classes)
        .map(|_| {
            (0..pixel_count)
                .map(|_| rng.gen_range(-1.0..=1.0))
                .collect()
        })
        .collect();

    let mut samples = Vec::with_capacity(spec.num_classes * spec.samples_per_class);
    let mut labels = Vec::with_capacity(spec.num_classes * spec.samples_per_class);
    for s in 0..spec.samples_per_class {
        for (class, prototype) in prototypes.iter().enumerate() {
            let noise_amplitude = spec.difficulty as f32;
            let data: Vec<f32> = prototype
                .iter()
                .map(|&p| {
                    // Sum of two uniforms approximates a triangular (noise)
                    // distribution; cheap and dependency-free.
                    let noise = (rng.gen_range(-1.0f32..=1.0) + rng.gen_range(-1.0f32..=1.0)) * 0.5;
                    p + noise * noise_amplitude
                })
                .collect();
            samples.push(Tensor::from_vec(spec.sample_shape(), data)?);
            labels.push(class);
        }
        // `s` only drives the loop count.
        let _ = s;
    }
    Ok(Dataset {
        samples,
        labels,
        num_classes: spec.num_classes,
        sample_shape: spec.sample_shape(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_dataset_is_balanced_and_shaped() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = SyntheticSpec::sign_mnist_like(10);
        let data = generate_synthetic(&spec, &mut rng).unwrap();
        assert_eq!(data.len(), 8 * 10);
        assert!(!data.is_empty());
        assert_eq!(data.sample_shape, vec![1, 12, 12]);
        for class in 0..8 {
            assert_eq!(data.labels.iter().filter(|&&l| l == class).count(), 10);
        }
        for s in &data.samples {
            assert_eq!(s.shape(), &[1, 12, 12]);
        }
    }

    #[test]
    fn split_preserves_shapes_and_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = generate_synthetic(&SyntheticSpec::cifar10_like(6), &mut rng).unwrap();
        let (train, test) = data.split(0.75);
        assert_eq!(train.len() + test.len(), data.len());
        assert_eq!(train.len(), (data.len() * 3) / 4);
        assert_eq!(train.num_classes, 10);
        assert_eq!(test.sample_shape, data.sample_shape);
    }

    #[test]
    fn difficulty_orders_the_standins() {
        let easy = SyntheticSpec::sign_mnist_like(1).difficulty;
        let medium = SyntheticSpec::cifar10_like(1).difficulty;
        let hard = SyntheticSpec::stl10_like(1).difficulty;
        assert!(easy < medium && medium < hard);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut spec = SyntheticSpec::sign_mnist_like(4);
        spec.num_classes = 0;
        assert!(generate_synthetic(&spec, &mut rng).is_err());
        let mut spec = SyntheticSpec::sign_mnist_like(0);
        spec.samples_per_class = 0;
        assert!(generate_synthetic(&spec, &mut rng).is_err());
        let mut spec = SyntheticSpec::sign_mnist_like(4);
        spec.channels = 0;
        assert!(generate_synthetic(&spec, &mut rng).is_err());
    }

    #[test]
    fn same_class_samples_are_closer_than_cross_class_samples() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = generate_synthetic(&SyntheticSpec::sign_mnist_like(4), &mut rng).unwrap();
        // Compare distances between two samples of class 0 and a class-0 /
        // class-1 pair.
        let class0: Vec<&Tensor> = data
            .samples
            .iter()
            .zip(&data.labels)
            .filter(|(_, &l)| l == 0)
            .map(|(s, _)| s)
            .collect();
        let class1: Vec<&Tensor> = data
            .samples
            .iter()
            .zip(&data.labels)
            .filter(|(_, &l)| l == 1)
            .map(|(s, _)| s)
            .collect();
        let dist = |a: &Tensor, b: &Tensor| {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
        };
        let within = dist(class0[0], class0[1]);
        let between = dist(class0[0], class1[0]);
        assert!(
            within < between,
            "within {within} should be < between {between}"
        );
    }
}
