//! Sequential network container.

use crate::error::{NeuralError, Result};
use crate::layers::{DotProductWorkload, Layer, LayerKind};
use crate::quant::QuantConfig;
use crate::tensor::Tensor;

/// A feed-forward network built as an ordered list of layers.
///
/// # Example
///
/// ```
/// use crosslight_neural::layers::{Dense, Relu};
/// use crosslight_neural::model::Sequential;
/// use crosslight_neural::tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), crosslight_neural::error::NeuralError> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut model = Sequential::new("tiny", vec![4]);
/// model.push(Box::new(Dense::new(4, 8, &mut rng)?));
/// model.push(Box::new(Relu::new()));
/// model.push(Box::new(Dense::new(8, 3, &mut rng)?));
/// let logits = model.forward(&Tensor::zeros(vec![4]))?;
/// assert_eq!(logits.shape(), &[3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sequential {
    name: String,
    input_shape: Vec<usize>,
    layers: Vec<Box<dyn Layer>>,
    /// Ping-pong activation/gradient buffers threaded through the layers by
    /// the `_into` passes; they grow once to the largest intermediate shape
    /// and are reused for every subsequent sample (zero steady-state
    /// allocations).
    ping: Tensor,
    pong: Tensor,
}

/// Structural summary of one layer within a [`Sequential`] network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Trainable parameter count.
    pub parameters: usize,
    /// Output shape for the network's input shape.
    pub output_shape: Vec<usize>,
    /// Photonic dot-product workload of the layer, if any.
    pub dot_products: Option<DotProductWorkload>,
}

impl Sequential {
    /// Creates an empty network with a name and an expected input shape.
    #[must_use]
    pub fn new(name: impl Into<String>, input_shape: Vec<usize>) -> Self {
        Self {
            name: name.into(),
            input_shape,
            layers: Vec::new(),
            ping: Tensor::default(),
            pong: Tensor::default(),
        }
    }

    /// Returns the network's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the expected input shape.
    #[must_use]
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Appends a layer to the network.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Returns the number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Number of layers of a given kind.
    #[must_use]
    pub fn count_kind(&self, kind: LayerKind) -> usize {
        self.layers.iter().filter(|l| l.kind() == kind).count()
    }

    /// Runs a forward pass on one sample.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut output = Tensor::default();
        self.forward_into(input, &mut output)?;
        Ok(output)
    }

    /// Runs a forward pass on one sample into a caller-owned output tensor.
    ///
    /// Intermediate activations ping-pong between two persistent internal
    /// buffers, so in steady state (same input shape) the whole pass performs
    /// zero heap allocations.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_into(&mut self, input: &Tensor, output: &mut Tensor) -> Result<()> {
        let count = self.layers.len();
        if count == 0 {
            output.copy_from(input);
            return Ok(());
        }
        let mut a = std::mem::take(&mut self.ping);
        let mut b = std::mem::take(&mut self.pong);
        let mut status = Ok(());
        for (idx, layer) in self.layers.iter_mut().enumerate() {
            let result = match (idx == 0, idx == count - 1) {
                (true, true) => layer.forward_into(input, output),
                (true, false) => layer.forward_into(input, &mut a),
                (false, true) => layer.forward_into(&a, output),
                (false, false) => {
                    let r = layer.forward_into(&a, &mut b);
                    std::mem::swap(&mut a, &mut b);
                    r
                }
            };
            if result.is_err() {
                status = result;
                break;
            }
        }
        self.ping = a;
        self.pong = b;
        status
    }

    /// Runs a forward pass with activation fake-quantization after every
    /// parameterised layer, emulating a `quant_bits.activation_bits`-bit
    /// analog datapath.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_quantized(&mut self, input: &Tensor, quant: &QuantConfig) -> Result<Tensor> {
        let mut output = Tensor::default();
        self.forward_quantized_into(input, quant, &mut output)?;
        Ok(output)
    }

    /// Destination-buffer form of [`Sequential::forward_quantized`];
    /// quantization happens in place on the ping-pong buffers, so steady
    /// state allocates nothing.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_quantized_into(
        &mut self,
        input: &Tensor,
        quant: &QuantConfig,
        output: &mut Tensor,
    ) -> Result<()> {
        let count = self.layers.len();
        let mut a = std::mem::take(&mut self.ping);
        let mut b = std::mem::take(&mut self.pong);
        a.copy_from(input);
        quant.quantize_activations_in_place(&mut a);
        if count == 0 {
            output.copy_from(&a);
            self.ping = a;
            self.pong = b;
            return Ok(());
        }
        let mut status = Ok(());
        for (idx, layer) in self.layers.iter_mut().enumerate() {
            let last = idx == count - 1;
            let result = if last {
                layer.forward_into(&a, output)
            } else {
                layer.forward_into(&a, &mut b)
            };
            if result.is_err() {
                status = result;
                break;
            }
            if layer.parameter_count() > 0 {
                if last {
                    quant.quantize_activations_in_place(output);
                } else {
                    quant.quantize_activations_in_place(&mut b);
                }
            }
            if !last {
                std::mem::swap(&mut a, &mut b);
            }
        }
        self.ping = a;
        self.pong = b;
        status
    }

    /// Runs a backward pass, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Propagates shape/state errors from the layers.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut grad_input = Tensor::default();
        self.backward_into(grad_output, &mut grad_input)?;
        Ok(grad_input)
    }

    /// Runs a backward pass into a caller-owned input-gradient tensor,
    /// reusing the same persistent ping-pong buffers as the forward pass
    /// (zero steady-state allocations).
    ///
    /// # Errors
    ///
    /// Propagates shape/state errors from the layers.
    pub fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> Result<()> {
        let count = self.layers.len();
        if count == 0 {
            grad_input.copy_from(grad_output);
            return Ok(());
        }
        let mut a = std::mem::take(&mut self.ping);
        let mut b = std::mem::take(&mut self.pong);
        let mut status = Ok(());
        for (idx, layer) in self.layers.iter_mut().rev().enumerate() {
            let result = match (idx == 0, idx == count - 1) {
                (true, true) => layer.backward_into(grad_output, grad_input),
                (true, false) => layer.backward_into(grad_output, &mut a),
                (false, true) => layer.backward_into(&a, grad_input),
                (false, false) => {
                    let r = layer.backward_into(&a, &mut b);
                    std::mem::swap(&mut a, &mut b);
                    r
                }
            };
            if result.is_err() {
                status = result;
                break;
            }
        }
        self.ping = a;
        self.pong = b;
        status
    }

    /// Applies all accumulated gradients with vanilla SGD.
    pub fn apply_gradients(&mut self, learning_rate: f32) {
        for layer in &mut self.layers {
            layer.apply_gradients(learning_rate);
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_gradients(&mut self) {
        for layer in &mut self.layers {
            layer.zero_gradients();
        }
    }

    /// Fake-quantizes every layer's parameters in place.
    pub fn quantize_parameters(&mut self, bits: u32) {
        for layer in &mut self.layers {
            layer.quantize_parameters(bits);
        }
    }

    /// Produces a per-layer structural summary (shapes, parameters, photonic
    /// workload), walking the declared input shape through the network.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the layers do not compose.
    pub fn summary(&self) -> Result<Vec<LayerSummary>> {
        let mut shape = self.input_shape.clone();
        let mut out = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let dot_products = layer.dot_products(&shape)?;
            let output_shape = layer.output_shape(&shape)?;
            out.push(LayerSummary {
                name: layer.name(),
                kind: layer.kind(),
                parameters: layer.parameter_count(),
                output_shape: output_shape.clone(),
                dot_products,
            });
            shape = output_shape;
        }
        Ok(out)
    }

    /// The output shape of the whole network.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the layers do not compose, or
    /// [`NeuralError::InvalidState`] for an empty network.
    pub fn output_shape(&self) -> Result<Vec<usize>> {
        if self.layers.is_empty() {
            return Err(NeuralError::InvalidState {
                reason: "network has no layers".into(),
            });
        }
        Ok(self
            .summary()?
            .last()
            .expect("non-empty network has a last layer")
            .output_shape
            .clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cnn() -> Sequential {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = Sequential::new("tiny_cnn", vec![1, 8, 8]);
        model.push(Box::new(Conv2d::new(1, 4, 3, 1, &mut rng).unwrap()));
        model.push(Box::new(Relu::new()));
        model.push(Box::new(MaxPool2d::new(2).unwrap()));
        model.push(Box::new(Flatten::new()));
        model.push(Box::new(Dense::new(4 * 3 * 3, 5, &mut rng).unwrap()));
        model
    }

    #[test]
    fn forward_produces_expected_output_shape() {
        let mut model = tiny_cnn();
        let out = model.forward(&Tensor::zeros(vec![1, 8, 8])).unwrap();
        assert_eq!(out.shape(), &[5]);
        assert_eq!(model.output_shape().unwrap(), vec![5]);
    }

    #[test]
    fn summary_tracks_shapes_and_workloads() {
        let model = tiny_cnn();
        let summary = model.summary().unwrap();
        assert_eq!(summary.len(), 5);
        assert_eq!(summary[0].output_shape, vec![4, 6, 6]);
        assert_eq!(summary[2].output_shape, vec![4, 3, 3]);
        assert_eq!(summary[4].output_shape, vec![5]);
        let conv_work = summary[0].dot_products.unwrap();
        assert_eq!(conv_work.dot_length, 9);
        assert_eq!(conv_work.dot_count, 4 * 36);
        assert!(summary[2].dot_products.is_none());
        let fc_work = summary[4].dot_products.unwrap();
        assert_eq!(fc_work.dot_length, 36);
        assert_eq!(fc_work.dot_count, 5);
        assert_eq!(model.count_kind(LayerKind::Convolution), 1);
        assert_eq!(model.count_kind(LayerKind::FullyConnected), 1);
    }

    #[test]
    fn parameter_count_sums_layers() {
        let model = tiny_cnn();
        let expected = (4 * 9 + 4) + (36 * 5 + 5);
        assert_eq!(model.parameter_count(), expected);
        assert_eq!(model.len(), 5);
        assert!(!model.is_empty());
    }

    #[test]
    fn backward_and_update_reduce_loss() {
        let mut model = tiny_cnn();
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::random_uniform(vec![1, 8, 8], 1.0, &mut rng);
        let target = 2usize;
        let mut losses = Vec::new();
        for _ in 0..30 {
            let logits = model.forward(&x).unwrap();
            let probs = crate::layers::softmax(&logits);
            losses.push(-probs.as_slice()[target].max(1e-9).ln());
            // dL/dlogits = probs - one_hot(target).
            let mut grad = probs.clone();
            grad.as_mut_slice()[target] -= 1.0;
            model.backward(&grad).unwrap();
            model.apply_gradients(0.05);
        }
        assert!(losses.last().unwrap() < &(losses[0] * 0.5));
    }

    #[test]
    fn quantized_forward_differs_from_full_precision_at_low_bits() {
        let mut model = tiny_cnn();
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::random_uniform(vec![1, 8, 8], 1.0, &mut rng);
        let full = model.forward(&x).unwrap();
        let quant = QuantConfig::new(2, 2);
        let low = model.forward_quantized(&x, &quant).unwrap();
        let diff: f32 = full
            .as_slice()
            .iter()
            .zip(low.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "2-bit activations should perturb the output");
        // 16-bit activations should be near-identical.
        let high = model
            .forward_quantized(&x, &QuantConfig::new(24, 24))
            .unwrap();
        let diff_high: f32 = full
            .as_slice()
            .iter()
            .zip(high.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff_high < 1e-5);
    }

    #[test]
    fn empty_network_output_shape_errors() {
        let model = Sequential::new("empty", vec![4]);
        assert!(model.output_shape().is_err());
        assert!(model.is_empty());
    }
}
