//! A small dense tensor type.
//!
//! The neural substrate only needs what the CrossLight experiments need:
//! `f32` storage, arbitrary-rank shapes, elementwise arithmetic, 2-D matrix
//! multiplication and the im2col transform that turns convolutions into the
//! vector dot products a photonic accelerator executes (paper Eqs. (1)–(4)).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{NeuralError, Result};

/// A dense, row-major `f32` tensor.
///
/// # Example
///
/// ```
/// use crosslight_neural::tensor::Tensor;
///
/// # fn main() -> Result<(), crosslight_neural::error::NeuralError> {
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// let c = a.matmul(&b)?;
/// assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with a constant value.
    #[must_use]
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from explicit data.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![expected],
                actual: vec![data.len()],
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor with entries drawn uniformly from `[-limit, limit]`,
    /// the He/Xavier-style initialisation used by the training code.
    pub fn random_uniform<R: Rng + ?Sized>(shape: Vec<usize>, limit: f32, rng: &mut R) -> Self {
        let len = shape.iter().product();
        let data = (0..len).map(|_| rng.gen_range(-limit..=limit)).collect();
        Self { shape, data }
    }

    /// Returns the tensor shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the underlying data as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data as a mutable slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the tensor without copying data.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the element count changes.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![expected],
                actual: vec![self.data.len()],
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Returns element `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of bounds.
    #[must_use]
    pub fn get2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "get2 requires a rank-2 tensor");
        assert!(
            row < self.shape[0] && col < self.shape[1],
            "index out of bounds"
        );
        self.data[row * self.shape[1] + col]
    }

    /// Sets element `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of bounds.
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        assert_eq!(self.shape.len(), 2, "set2 requires a rank-2 tensor");
        assert!(
            row < self.shape[0] && col < self.shape[1],
            "index out of bounds"
        );
        self.data[row * self.shape[1] + col] = value;
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    #[must_use]
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Applies a function to every element.
    #[must_use]
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum element (negative infinity for an empty tensor).
    #[must_use]
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element (0 for an empty tensor).
    #[must_use]
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i)
    }

    /// Dot product with another tensor of identical length.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(NeuralError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if either tensor is not rank 2
    /// or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[1] != other.shape[0] {
            return Err(NeuralError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(row.iter()) {
                    *d += a * b;
                }
            }
        }
        Ok(Tensor {
            shape: vec![m, n],
            data: out,
        })
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape.len() != 2 {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![2],
                actual: vec![self.shape.len()],
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(Tensor {
            shape: vec![n, m],
            data,
        })
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(NeuralError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

/// Parameters of an im2col transform (the conv → dot-product rewriting of
/// paper Eqs. (1)–(3)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Im2colSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl Im2colSpec {
    /// Output spatial height of the convolution.
    #[must_use]
    pub fn out_height(&self) -> usize {
        if self.height < self.kernel {
            0
        } else {
            (self.height - self.kernel) / self.stride + 1
        }
    }

    /// Output spatial width of the convolution.
    #[must_use]
    pub fn out_width(&self) -> usize {
        if self.width < self.kernel {
            0
        } else {
            (self.width - self.kernel) / self.stride + 1
        }
    }

    /// Length of each im2col column (= dot-product length per output pixel).
    #[must_use]
    pub fn column_length(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Lowers a `[C, H, W]` activation tensor to an im2col matrix of shape
/// `[out_h * out_w, C * k * k]`, so that convolution with a `[out_c, C*k*k]`
/// weight matrix becomes a plain matrix multiplication — exactly the
/// dot-product form the photonic VDP units execute.
///
/// # Errors
///
/// Returns [`NeuralError::ShapeMismatch`] if `input` is not `[C, H, W]` with
/// dimensions matching `spec`.
pub fn im2col(input: &Tensor, spec: &Im2colSpec) -> Result<Tensor> {
    let expected = vec![spec.in_channels, spec.height, spec.width];
    if input.shape() != expected.as_slice() {
        return Err(NeuralError::ShapeMismatch {
            expected,
            actual: input.shape().to_vec(),
        });
    }
    let out_h = spec.out_height();
    let out_w = spec.out_width();
    let cols = spec.column_length();
    let mut data = vec![0.0f32; out_h * out_w * cols];
    let src = input.as_slice();
    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = oy * out_w + ox;
            let mut col = 0;
            for c in 0..spec.in_channels {
                for ky in 0..spec.kernel {
                    for kx in 0..spec.kernel {
                        let iy = oy * spec.stride + ky;
                        let ix = ox * spec.stride + kx;
                        data[row * cols + col] =
                            src[c * spec.height * spec.width + iy * spec.width + ix];
                        col += 1;
                    }
                }
            }
        }
    }
    Tensor::from_vec(vec![out_h * out_w, cols], data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        let f = Tensor::full(vec![2], 3.5);
        assert_eq!(f.as_slice(), &[3.5, 3.5]);
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|x| x * x).as_slice(), &[1.0, 4.0, 9.0]);
        assert!((a.sum() - 6.0).abs() < 1e-6);
        assert!((a.dot(&b).unwrap() - 32.0).abs() < 1e-6);
        let c = Tensor::zeros(vec![2]);
        assert!(a.add(&c).is_err());
        assert!(a.dot(&c).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get2(0, 1), 4.0);
        let back = t.transpose().unwrap();
        assert_eq!(back, a);
        assert!(Tensor::zeros(vec![2]).transpose().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = a.clone().reshape(vec![3, 2]).unwrap();
        assert_eq!(r.as_slice(), a.as_slice());
        assert!(a.clone().reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn argmax_and_max() {
        let a = Tensor::from_vec(vec![4], vec![0.1, 0.7, 0.3, 0.5]).unwrap();
        assert_eq!(a.argmax(), 1);
        assert!((a.max() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn random_uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::random_uniform(vec![100], 0.25, &mut rng);
        assert!(t.as_slice().iter().all(|&x| x.abs() <= 0.25));
        // Not all identical.
        assert!(t
            .as_slice()
            .iter()
            .any(|&x| (x - t.as_slice()[0]).abs() > 1e-9));
    }

    #[test]
    fn im2col_2x2_kernel_matches_paper_example() {
        // Paper Eq. (2): a 2×2 kernel over a 2×2 activation patch is a single
        // 4-element dot product.
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let spec = Im2colSpec {
            in_channels: 1,
            height: 2,
            width: 2,
            kernel: 2,
            stride: 1,
        };
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.shape(), &[1, 4]);
        assert_eq!(cols.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        // Dot with the kernel [k1..k4] gives k1 a1 + k2 a2 + k3 a3 + k4 a4.
        let kernel = Tensor::from_vec(vec![4], vec![0.5, 0.25, 0.125, 1.0]).unwrap();
        let flat = Tensor::from_vec(vec![4], cols.as_slice().to_vec()).unwrap();
        let y = flat.dot(&kernel).unwrap();
        assert!((y - (0.5 + 0.5 + 0.375 + 4.0)).abs() < 1e-6);
    }

    #[test]
    fn im2col_shapes_and_stride() {
        let input = Tensor::from_vec(vec![2, 4, 4], (0..32).map(|x| x as f32).collect()).unwrap();
        let spec = Im2colSpec {
            in_channels: 2,
            height: 4,
            width: 4,
            kernel: 2,
            stride: 2,
        };
        assert_eq!(spec.out_height(), 2);
        assert_eq!(spec.out_width(), 2);
        assert_eq!(spec.column_length(), 8);
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.shape(), &[4, 8]);
        // First column of the first patch is the top-left pixel of channel 0.
        assert_eq!(cols.get2(0, 0), 0.0);
        // Wrong input shape is rejected.
        let bad = Tensor::zeros(vec![1, 4, 4]);
        assert!(im2col(&bad, &spec).is_err());
    }

    #[test]
    fn im2col_kernel_larger_than_input_gives_empty_output() {
        let spec = Im2colSpec {
            in_channels: 1,
            height: 2,
            width: 2,
            kernel: 3,
            stride: 1,
        };
        assert_eq!(spec.out_height(), 0);
        assert_eq!(spec.out_width(), 0);
    }
}
