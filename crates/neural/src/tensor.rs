//! A small dense tensor type with allocation-free, cache-blocked kernels.
//!
//! The neural substrate only needs what the CrossLight experiments need:
//! `f32` storage, arbitrary-rank shapes, elementwise arithmetic, 2-D matrix
//! multiplication and the im2col transform that turns convolutions into the
//! vector dot products a photonic accelerator executes (paper Eqs. (1)–(4)).
//!
//! # Kernel design
//!
//! Every hot kernel comes in two flavours:
//!
//! * an **allocating** convenience form ([`Tensor::matmul`], [`im2col`], …)
//!   that returns a fresh tensor, and
//! * an **`_into` form** ([`Tensor::matmul_into`], [`im2col_into`], …) that
//!   writes into a caller-owned destination tensor, reusing its heap buffer.
//!   In steady state (same shapes call-to-call) the `_into` forms perform
//!   **zero heap allocations**.
//!
//! The matrix kernels are cache-blocked along the shared dimension and use a
//! branch-free SAXPY-style inner loop that autovectorizes (the old
//! `a == 0.0` skip branch defeated SIMD on dense data and is gone).  Fused
//! [`Tensor::matmul_transpose_b`] / [`Tensor::transpose_a_matmul`] variants
//! and [`im2col_transposed_into`] eliminate the explicit weight/column
//! transposes from the conv forward and input-gradient paths (layers keep a
//! materialized transpose only where the fused dot-form reduction would be
//! slower than transpose + SAXPY, e.g. the conv weight gradient).
//!
//! **Bit-identity guarantee:** every blocked/fused kernel accumulates each
//! output element over the shared dimension in the same ascending order, from
//! the same `0.0` starting accumulator, as the naive triple-loop reference
//! (preserved in [`reference`]).  Results are therefore bit-identical to the
//! naive kernels for finite inputs — property-tested in
//! `tests/properties.rs` — which is what lets the training pipeline and the
//! runtime's bit-equivalence guarantees survive the performance rework.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{NeuralError, Result};

/// Cache-block size along the shared (reduction) dimension of the matrix
/// kernels.  A 64-row panel of `b` (64 × n floats) stays resident in L1/L2
/// while every row of `a` streams over it.  Accumulation order per output
/// element is unaffected by the block size (blocks are visited in ascending
/// order), so any value here produces bit-identical results.
const BLOCK_K: usize = 64;

/// A dense, row-major `f32` tensor.
///
/// # Example
///
/// ```
/// use crosslight_neural::tensor::Tensor;
///
/// # fn main() -> Result<(), crosslight_neural::error::NeuralError> {
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// let c = a.matmul(&b)?;
/// assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with a constant value.
    #[must_use]
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from explicit data.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![expected],
                actual: vec![data.len()],
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor with entries drawn uniformly from `[-limit, limit]`,
    /// the He/Xavier-style initialisation used by the training code.
    pub fn random_uniform<R: Rng + ?Sized>(shape: Vec<usize>, limit: f32, rng: &mut R) -> Self {
        let len = shape.iter().product();
        let data = (0..len).map(|_| rng.gen_range(-limit..=limit)).collect();
        Self { shape, data }
    }

    /// Returns the tensor shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the underlying data as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data as a mutable slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the tensor without copying data.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the element count changes.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![expected],
                actual: vec![self.data.len()],
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Changes the shape in place without touching the data or allocating.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the element count changes.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<()> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![expected],
                actual: vec![self.data.len()],
            });
        }
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        Ok(())
    }

    /// Resizes to `shape` and zero-fills, reusing the existing heap buffers
    /// (no allocation once capacity has grown to the steady-state size).
    pub fn reset(&mut self, shape: &[usize]) {
        let len = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// Resizes to `shape` without zero-filling the prefix; every element is
    /// expected to be overwritten by the caller (or by a kernel that zeroes
    /// its own destination).  Reuses the heap buffers.
    pub(crate) fn resize_for_overwrite(&mut self, shape: &[usize]) {
        let len = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(len, 0.0);
    }

    /// Copies shape and data from `other`, reusing this tensor's buffers.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&other.shape);
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Returns element `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of bounds.
    #[must_use]
    pub fn get2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "get2 requires a rank-2 tensor");
        assert!(
            row < self.shape[0] && col < self.shape[1],
            "index out of bounds"
        );
        self.data[row * self.shape[1] + col]
    }

    /// Sets element `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of bounds.
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        assert_eq!(self.shape.len(), 2, "set2 requires a rank-2 tensor");
        assert!(
            row < self.shape[0] && col < self.shape[1],
            "index out of bounds"
        );
        self.data[row * self.shape[1] + col] = value;
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place elementwise addition (`self += other`), allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(NeuralError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place scalar multiplication (`self *= factor`), allocation-free.
    pub fn scale_assign(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Multiplies every element by a scalar.
    #[must_use]
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Applies a function to every element.
    #[must_use]
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum element (negative infinity for an empty tensor).
    #[must_use]
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element (0 for an empty tensor).
    #[must_use]
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i)
    }

    /// Dot product with another tensor of identical length.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(NeuralError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    fn check_matmul(&self, other: &Tensor) -> Result<(usize, usize, usize)> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[1] != other.shape[0] {
            return Err(NeuralError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        Ok((self.shape[0], self.shape[1], other.shape[1]))
    }

    /// Matrix multiplication of two rank-2 tensors (`[m, k] · [k, n]`).
    ///
    /// Delegates to the cache-blocked [`Tensor::matmul_into`]; results are
    /// bit-identical to the naive triple loop in
    /// [`reference::matmul_naive`].
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if either tensor is not rank 2
    /// or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let mut out = Tensor::default();
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Cache-blocked matrix multiplication into a caller-owned destination
    /// (`out = self · other`), allocation-free in steady state.
    ///
    /// The kernel streams 64-row panels of `other` (see [`BLOCK_K`]) through
    /// a branch-free SAXPY inner loop over contiguous rows, which
    /// autovectorizes.  Each output element accumulates over the shared
    /// dimension in ascending order from `0.0`, so the result is
    /// bit-identical to [`reference::matmul_naive`].
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if either operand is not rank 2
    /// or the inner dimensions disagree.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) -> Result<()> {
        let (m, k, n) = self.check_matmul(other)?;
        out.resize_for_overwrite(&[m, n]);
        matmul_kernel(&self.data, &other.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// Fused `self · otherᵀ` for rank-2 tensors (`[m, k] · [n, k]ᵀ → [m, n]`)
    /// without materializing the transpose.
    ///
    /// Bit-identical to `self.matmul(&other.transpose()?)`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if either operand is not rank 2
    /// or the shared dimensions disagree.
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Result<Tensor> {
        let mut out = Tensor::default();
        self.matmul_transpose_b_into(other, &mut out)?;
        Ok(out)
    }

    /// Destination-buffer form of [`Tensor::matmul_transpose_b`],
    /// allocation-free in steady state.
    ///
    /// Both operands are traversed along contiguous rows (the transpose is
    /// fused into the indexing), so no scratch matrix is ever built.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if either operand is not rank 2
    /// or the shared dimensions disagree.
    pub fn matmul_transpose_b_into(&self, other: &Tensor, out: &mut Tensor) -> Result<()> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[1] != other.shape[1] {
            return Err(NeuralError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        let (m, k, n) = (self.shape[0], self.shape[1], other.shape[0]);
        out.resize_for_overwrite(&[m, n]);
        matmul_transpose_b_kernel(&self.data, &other.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// Fused `selfᵀ · other` for rank-2 tensors (`[k, m]ᵀ · [k, n] → [m, n]`)
    /// without materializing the transpose.
    ///
    /// Bit-identical to `self.transpose()?.matmul(other)`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if either operand is not rank 2
    /// or the shared dimensions disagree.
    pub fn transpose_a_matmul(&self, other: &Tensor) -> Result<Tensor> {
        let mut out = Tensor::default();
        self.transpose_a_matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Destination-buffer form of [`Tensor::transpose_a_matmul`],
    /// allocation-free in steady state.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if either operand is not rank 2
    /// or the shared dimensions disagree.
    pub fn transpose_a_matmul_into(&self, other: &Tensor, out: &mut Tensor) -> Result<()> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[0] != other.shape[0] {
            return Err(NeuralError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        let (k, m, n) = (self.shape[0], self.shape[1], other.shape[1]);
        out.resize_for_overwrite(&[m, n]);
        transpose_a_matmul_kernel(&self.data, &other.data, &mut out.data, k, m, n);
        Ok(())
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        let mut out = Tensor::default();
        self.transpose_into(&mut out)?;
        Ok(out)
    }

    /// Transpose of a rank-2 tensor into a caller-owned destination,
    /// allocation-free in steady state.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the tensor is not rank 2.
    pub fn transpose_into(&self, out: &mut Tensor) -> Result<()> {
        if self.shape.len() != 2 {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![2],
                actual: vec![self.shape.len()],
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        out.resize_for_overwrite(&[n, m]);
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            for (j, &v) in row.iter().enumerate() {
                out.data[j * m + i] = v;
            }
        }
        Ok(())
    }

    /// Elementwise combination into a caller-owned destination
    /// (`out[i] = f(self[i], other[i])`), allocation-free in steady state.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] on shape mismatch.
    pub fn zip_with_into<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        f: F,
    ) -> Result<()> {
        if self.shape != other.shape {
            return Err(NeuralError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        out.resize_for_overwrite(&self.shape);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = f(a, b);
        }
        Ok(())
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        let mut out = Tensor::default();
        self.zip_with_into(other, &mut out, f)?;
        Ok(out)
    }
}

/// Crate-internal slice entry point of the blocked matmul, for layers that
/// multiply borrowed sub-views (e.g. a `[C, H, W]` gradient viewed as a
/// matrix) without materializing `Tensor` operands.
pub(crate) fn matmul_slices(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    matmul_kernel(a, b, out, m, k, n);
}

/// Crate-internal slice entry point of the fused `aᵀ · b` kernel.
pub(crate) fn transpose_a_matmul_slices(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    transpose_a_matmul_kernel(a, b, out, k, m, n);
}

/// `out[m × n] = a[m × k] · b[k × n]`, cache-blocked over `k`.
///
/// Per output element the accumulation runs over `p = 0..k` in ascending
/// order (blocks ascending, positions within a block ascending) from a `0.0`
/// accumulator — the exact chain of the naive kernel.
fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    let mut pb = 0;
    while pb < k {
        let pe = (pb + BLOCK_K).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let dst = &mut out[i * n..(i + 1) * n];
            // Four `b` rows per pass: each destination element receives its
            // four products as separate, sequential adds (p, p+1, p+2, p+3 —
            // the exact naive order), but the destination value stays in a
            // register across all four, quartering the dst load/store
            // traffic and the loop overhead on skinny matrices.
            let mut p = pb;
            while p + 4 <= pe {
                let a0 = a_row[p];
                let a1 = a_row[p + 1];
                let a2 = a_row[p + 2];
                let a3 = a_row[p + 3];
                let b0 = &b[p * n..(p + 1) * n];
                let b1 = &b[(p + 1) * n..(p + 2) * n];
                let b2 = &b[(p + 2) * n..(p + 3) * n];
                let b3 = &b[(p + 3) * n..(p + 4) * n];
                for ((((d, &v0), &v1), &v2), &v3) in dst.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    let mut v = *d;
                    v += a0 * v0;
                    v += a1 * v1;
                    v += a2 * v2;
                    v += a3 * v3;
                    *d = v;
                }
                p += 4;
            }
            while p < pe {
                let av = a_row[p];
                let b_row = &b[p * n..(p + 1) * n];
                for (d, &bv) in dst.iter_mut().zip(b_row) {
                    *d += av * bv;
                }
                p += 1;
            }
        }
        pb = pe;
    }
}

/// `out[m × n] = a[m × k] · b[n × k]ᵀ` — both operands walked along
/// contiguous rows; the shared dimension accumulates in ascending order.
fn matmul_transpose_b_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

/// `out[m × n] = a[k × m]ᵀ · b[k × n]` — the reduction dimension is the
/// outer loop, so both operands stream along contiguous rows and the inner
/// SAXPY over `n` autovectorizes.  `n == 1` (dense backward) is
/// special-cased so the vectorizable loop runs over `m` instead.
fn transpose_a_matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    out.fill(0.0);
    if n == 1 {
        for p in 0..k {
            let scale = b[p];
            let a_row = &a[p * m..(p + 1) * m];
            for (o, &av) in out.iter_mut().zip(a_row) {
                *o += av * scale;
            }
        }
        return;
    }
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let dst = &mut out[i * n..(i + 1) * n];
            for (d, &bv) in dst.iter_mut().zip(b_row) {
                *d += av * bv;
            }
        }
    }
}

/// Parameters of an im2col transform (the conv → dot-product rewriting of
/// paper Eqs. (1)–(3)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Im2colSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl Im2colSpec {
    /// Output spatial height of the convolution.
    #[must_use]
    pub fn out_height(&self) -> usize {
        if self.height < self.kernel {
            0
        } else {
            (self.height - self.kernel) / self.stride + 1
        }
    }

    /// Output spatial width of the convolution.
    #[must_use]
    pub fn out_width(&self) -> usize {
        if self.width < self.kernel {
            0
        } else {
            (self.width - self.kernel) / self.stride + 1
        }
    }

    /// Length of each im2col column (= dot-product length per output pixel).
    #[must_use]
    pub fn column_length(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        let expected = [self.in_channels, self.height, self.width];
        if input.shape() != expected {
            return Err(NeuralError::ShapeMismatch {
                expected: expected.to_vec(),
                actual: input.shape().to_vec(),
            });
        }
        Ok(())
    }
}

/// Lowers a `[C, H, W]` activation tensor to an im2col matrix of shape
/// `[out_h * out_w, C * k * k]`, so that convolution with a `[out_c, C*k*k]`
/// weight matrix becomes a plain matrix multiplication — exactly the
/// dot-product form the photonic VDP units execute.
///
/// # Errors
///
/// Returns [`NeuralError::ShapeMismatch`] if `input` is not `[C, H, W]` with
/// dimensions matching `spec`.
pub fn im2col(input: &Tensor, spec: &Im2colSpec) -> Result<Tensor> {
    let mut out = Tensor::default();
    im2col_into(input, spec, &mut out)?;
    Ok(out)
}

/// Destination-buffer form of [`im2col`]: lowers into a caller-owned scratch
/// tensor, allocation-free in steady state.
///
/// Each `(patch, channel, kernel-row)` segment is a contiguous run of the
/// source image, so the kernel copies `kernel`-length slices instead of
/// moving single elements.
///
/// # Errors
///
/// Returns [`NeuralError::ShapeMismatch`] if `input` is not `[C, H, W]` with
/// dimensions matching `spec`.
pub fn im2col_into(input: &Tensor, spec: &Im2colSpec, out: &mut Tensor) -> Result<()> {
    spec.check_input(input)?;
    let out_h = spec.out_height();
    let out_w = spec.out_width();
    let cols = spec.column_length();
    out.resize_for_overwrite(&[out_h * out_w, cols]);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    let hw = spec.height * spec.width;
    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = oy * out_w + ox;
            let mut col = row * cols;
            for c in 0..spec.in_channels {
                let channel_base = c * hw;
                for ky in 0..spec.kernel {
                    let iy = oy * spec.stride + ky;
                    let src_base = channel_base + iy * spec.width + ox * spec.stride;
                    dst[col..col + spec.kernel]
                        .copy_from_slice(&src[src_base..src_base + spec.kernel]);
                    col += spec.kernel;
                }
            }
        }
    }
    Ok(())
}

/// Lowers a `[C, H, W]` activation tensor directly to the **transposed**
/// im2col matrix `[C * k * k, out_h * out_w]`, allocation-free in steady
/// state.
///
/// This is the layout the conv forward pass multiplies against
/// (`y = W · colsᵀ`); producing it directly fuses away the explicit
/// `transpose()` the old forward path materialized on every call.  Entry
/// `[l, p]` equals entry `[p, l]` of [`im2col`] bit-for-bit.
///
/// # Errors
///
/// Returns [`NeuralError::ShapeMismatch`] if `input` is not `[C, H, W]` with
/// dimensions matching `spec`.
pub fn im2col_transposed_into(input: &Tensor, spec: &Im2colSpec, out: &mut Tensor) -> Result<()> {
    spec.check_input(input)?;
    let out_h = spec.out_height();
    let out_w = spec.out_width();
    let pixels = out_h * out_w;
    let cols = spec.column_length();
    out.resize_for_overwrite(&[cols, pixels]);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    let hw = spec.height * spec.width;
    let mut col = 0;
    for c in 0..spec.in_channels {
        let channel_base = c * hw;
        for ky in 0..spec.kernel {
            for kx in 0..spec.kernel {
                let dst_row = &mut dst[col * pixels..(col + 1) * pixels];
                for oy in 0..out_h {
                    let iy = oy * spec.stride + ky;
                    let src_row = channel_base + iy * spec.width + kx;
                    let dst_seg = &mut dst_row[oy * out_w..(oy + 1) * out_w];
                    if spec.stride == 1 {
                        dst_seg.copy_from_slice(&src[src_row..src_row + out_w]);
                    } else {
                        for (ox, d) in dst_seg.iter_mut().enumerate() {
                            *d = src[src_row + ox * spec.stride];
                        }
                    }
                }
                col += 1;
            }
        }
    }
    Ok(())
}

/// Naive reference implementations of the blocked kernels.
///
/// These are the seed repository's original unblocked triple loops (minus
/// the `a == 0.0` skip branch, which is a no-op on finite data).  They exist
/// so property tests and the benchmark-trajectory harness can prove the
/// cache-blocked kernels **bit-identical** and measure their speedup; they
/// are not used on any hot path.
pub mod reference {
    use super::{Im2colSpec, Result, Tensor};

    /// Unblocked triple-loop matrix multiplication (`[m, k] · [k, n]`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::NeuralError::ShapeMismatch`] on rank or
    /// dimension mismatch.
    pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, k, n) = a.check_matmul(b)?;
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a.as_slice()[i * k + p];
                let row = &b.as_slice()[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &bv) in dst.iter_mut().zip(row.iter()) {
                    *d += av * bv;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Element-at-a-time im2col (`[C, H, W] → [P, C·k·k]`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::NeuralError::ShapeMismatch`] if `input` does
    /// not match `spec`.
    pub fn im2col_naive(input: &Tensor, spec: &Im2colSpec) -> Result<Tensor> {
        spec.check_input(input)?;
        let out_h = spec.out_height();
        let out_w = spec.out_width();
        let cols = spec.column_length();
        let mut data = vec![0.0f32; out_h * out_w * cols];
        let src = input.as_slice();
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row = oy * out_w + ox;
                let mut col = 0;
                for c in 0..spec.in_channels {
                    for ky in 0..spec.kernel {
                        for kx in 0..spec.kernel {
                            let iy = oy * spec.stride + ky;
                            let ix = ox * spec.stride + kx;
                            data[row * cols + col] =
                                src[c * spec.height * spec.width + iy * spec.width + ix];
                            col += 1;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(vec![out_h * out_w, cols], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        let f = Tensor::full(vec![2], 3.5);
        assert_eq!(f.as_slice(), &[3.5, 3.5]);
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|x| x * x).as_slice(), &[1.0, 4.0, 9.0]);
        assert!((a.sum() - 6.0).abs() < 1e-6);
        assert!((a.dot(&b).unwrap() - 32.0).abs() < 1e-6);
        let c = Tensor::zeros(vec![2]);
        assert!(a.add(&c).is_err());
        assert!(a.dot(&c).is_err());
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        let mut acc = a.clone();
        acc.add_assign(&b).unwrap();
        assert_eq!(acc, a.add(&b).unwrap());
        acc.scale_assign(0.5);
        assert_eq!(acc.as_slice(), a.add(&b).unwrap().scale(0.5).as_slice());
        assert!(acc.add_assign(&Tensor::zeros(vec![2])).is_err());
        let mut out = Tensor::default();
        a.zip_with_into(&b, &mut out, |x, y| x * y).unwrap();
        assert_eq!(out, a.hadamard(&b).unwrap());
    }

    #[test]
    fn copy_reset_and_reshape_in_place_reuse_buffers() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut t = Tensor::zeros(vec![10]);
        t.copy_from(&a);
        assert_eq!(t, a);
        t.reshape_in_place(&[3, 2]).unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.as_slice(), a.as_slice());
        assert!(t.reshape_in_place(&[4, 2]).is_err());
        t.reset(&[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_reference_across_block_boundary() {
        // Shapes straddling BLOCK_K exercise the panel loop.
        let mut rng = StdRng::seed_from_u64(17);
        for (m, k, n) in [(3, 5, 4), (7, BLOCK_K, 9), (5, BLOCK_K + 37, 8), (1, 1, 1)] {
            let a = Tensor::random_uniform(vec![m, k], 1.0, &mut rng);
            let b = Tensor::random_uniform(vec![k, n], 1.0, &mut rng);
            let blocked = a.matmul(&b).unwrap();
            let naive = reference::matmul_naive(&a, &b).unwrap();
            assert_eq!(blocked, naive, "({m},{k},{n})");
        }
    }

    #[test]
    fn fused_transpose_variants_match_explicit_transposes() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Tensor::random_uniform(vec![4, 6], 1.0, &mut rng);
        let b = Tensor::random_uniform(vec![5, 6], 1.0, &mut rng);
        assert_eq!(
            a.matmul_transpose_b(&b).unwrap(),
            a.matmul(&b.transpose().unwrap()).unwrap()
        );
        let c = Tensor::random_uniform(vec![4, 7], 1.0, &mut rng);
        assert_eq!(
            a.transpose_a_matmul(&c).unwrap(),
            a.transpose().unwrap().matmul(&c).unwrap()
        );
        // n == 1 fast path of transpose_a_matmul.
        let v = Tensor::random_uniform(vec![4, 1], 1.0, &mut rng);
        assert_eq!(
            a.transpose_a_matmul(&v).unwrap(),
            a.transpose().unwrap().matmul(&v).unwrap()
        );
        assert!(a.matmul_transpose_b(&c).is_err());
        assert!(a.transpose_a_matmul(&b).is_err());
    }

    #[test]
    fn matmul_into_reuses_destination() {
        let mut rng = StdRng::seed_from_u64(29);
        let a = Tensor::random_uniform(vec![3, 4], 1.0, &mut rng);
        let b = Tensor::random_uniform(vec![4, 5], 1.0, &mut rng);
        let mut out = Tensor::full(vec![9, 9], 7.0); // stale garbage, larger
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        // Shrinking and regrowing keeps results correct.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out.shape(), &[3, 5]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get2(0, 1), 4.0);
        let back = t.transpose().unwrap();
        assert_eq!(back, a);
        assert!(Tensor::zeros(vec![2]).transpose().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = a.clone().reshape(vec![3, 2]).unwrap();
        assert_eq!(r.as_slice(), a.as_slice());
        assert!(a.clone().reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn argmax_and_max() {
        let a = Tensor::from_vec(vec![4], vec![0.1, 0.7, 0.3, 0.5]).unwrap();
        assert_eq!(a.argmax(), 1);
        assert!((a.max() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn random_uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::random_uniform(vec![100], 0.25, &mut rng);
        assert!(t.as_slice().iter().all(|&x| x.abs() <= 0.25));
        // Not all identical.
        assert!(t
            .as_slice()
            .iter()
            .any(|&x| (x - t.as_slice()[0]).abs() > 1e-9));
    }

    #[test]
    fn im2col_2x2_kernel_matches_paper_example() {
        // Paper Eq. (2): a 2×2 kernel over a 2×2 activation patch is a single
        // 4-element dot product.
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let spec = Im2colSpec {
            in_channels: 1,
            height: 2,
            width: 2,
            kernel: 2,
            stride: 1,
        };
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.shape(), &[1, 4]);
        assert_eq!(cols.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        // Dot with the kernel [k1..k4] gives k1 a1 + k2 a2 + k3 a3 + k4 a4.
        let kernel = Tensor::from_vec(vec![4], vec![0.5, 0.25, 0.125, 1.0]).unwrap();
        let flat = Tensor::from_vec(vec![4], cols.as_slice().to_vec()).unwrap();
        let y = flat.dot(&kernel).unwrap();
        assert!((y - (0.5 + 0.5 + 0.375 + 4.0)).abs() < 1e-6);
    }

    #[test]
    fn im2col_shapes_and_stride() {
        let input = Tensor::from_vec(vec![2, 4, 4], (0..32).map(|x| x as f32).collect()).unwrap();
        let spec = Im2colSpec {
            in_channels: 2,
            height: 4,
            width: 4,
            kernel: 2,
            stride: 2,
        };
        assert_eq!(spec.out_height(), 2);
        assert_eq!(spec.out_width(), 2);
        assert_eq!(spec.column_length(), 8);
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.shape(), &[4, 8]);
        // First column of the first patch is the top-left pixel of channel 0.
        assert_eq!(cols.get2(0, 0), 0.0);
        // Wrong input shape is rejected.
        let bad = Tensor::zeros(vec![1, 4, 4]);
        assert!(im2col(&bad, &spec).is_err());
    }

    #[test]
    fn im2col_variants_agree_with_reference() {
        let mut rng = StdRng::seed_from_u64(31);
        for (c, h, w, kernel, stride) in [(1, 5, 5, 3, 1), (2, 6, 4, 2, 2), (3, 7, 7, 3, 2)] {
            let input = Tensor::random_uniform(vec![c, h, w], 1.0, &mut rng);
            let spec = Im2colSpec {
                in_channels: c,
                height: h,
                width: w,
                kernel,
                stride,
            };
            let naive = reference::im2col_naive(&input, &spec).unwrap();
            let fast = im2col(&input, &spec).unwrap();
            assert_eq!(fast, naive);
            let mut transposed = Tensor::default();
            im2col_transposed_into(&input, &spec, &mut transposed).unwrap();
            assert_eq!(transposed, naive.transpose().unwrap());
        }
    }

    #[test]
    fn im2col_kernel_larger_than_input_gives_empty_output() {
        let spec = Im2colSpec {
            in_channels: 1,
            height: 2,
            width: 2,
            kernel: 3,
            stride: 1,
        };
        assert_eq!(spec.out_height(), 0);
        assert_eq!(spec.out_width(), 0);
    }
}
