//! Error types for the neural-network substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor and network operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NeuralError {
    /// Two tensors (or a tensor and an expected shape) did not match.
    ShapeMismatch {
        /// Shape that was expected.
        expected: Vec<usize>,
        /// Shape that was provided.
        actual: Vec<usize>,
    },
    /// A layer or model was configured with an invalid parameter.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// A dataset request could not be satisfied (e.g. zero classes).
    InvalidDataset {
        /// Description of the problem.
        reason: String,
    },
    /// Forward/backward were called in an invalid order.
    InvalidState {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for NeuralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Self::InvalidDataset { reason } => write!(f, "invalid dataset: {reason}"),
            Self::InvalidState { reason } => write!(f, "invalid state: {reason}"),
        }
    }
}

impl Error for NeuralError {}

/// Convenience result alias for neural-network operations.
pub type Result<T> = std::result::Result<T, NeuralError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let errors = [
            NeuralError::ShapeMismatch {
                expected: vec![1, 2],
                actual: vec![2, 1],
            },
            NeuralError::InvalidParameter {
                name: "kernel",
                reason: "must be positive".into(),
            },
            NeuralError::InvalidDataset {
                reason: "zero classes".into(),
            },
            NeuralError::InvalidState {
                reason: "backward before forward".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeuralError>();
    }
}
