//! The paper's Table I model zoo.
//!
//! Two views of each model are provided:
//!
//! * [`ModelSpec`] — a lightweight structural description of the *full-size*
//!   architecture (layer dimensions, parameter counts, dot-product workload).
//!   This is what the accelerator simulator consumes; no weights are ever
//!   allocated, so even the 39-million-parameter Siamese network costs
//!   nothing to describe.
//! * [`ModelSpec::build_surrogate`] — a small trainable [`Sequential`] with
//!   the same layer *types* and the matching synthetic dataset, used by the
//!   Fig. 5 accuracy-vs-resolution study where actual training is required.
//!
//! The full-size parameter counts land within 1% of Table I
//! (model 4 matches exactly).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::datasets::SyntheticSpec;
use crate::error::{NeuralError, Result};
use crate::layers::{Conv2d, Dense, DotProductWorkload, Flatten, LayerKind, MaxPool2d, Relu};
use crate::model::Sequential;

/// Structural description of one layer of a full-size model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// 2-D convolution with square kernel and stride 1 (valid padding).
    Conv {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Kernel size.
        kernel: usize,
    },
    /// Max pooling with window == stride.
    MaxPool {
        /// Pooling window.
        window: usize,
    },
    /// Fully connected layer.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Flatten to rank 1.
    Flatten,
    /// ReLU activation.
    Relu,
}

/// Which of the paper's Table I models a spec describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperModel {
    /// Model 1: LeNet-5 on Sign-MNIST (60 k parameters).
    Lenet5SignMnist,
    /// Model 2: custom CNN on CIFAR-10 (890 k parameters).
    CnnCifar10,
    /// Model 3: custom CNN on STL-10 (3.2 M parameters).
    CnnStl10,
    /// Model 4: Siamese CNN on Omniglot (39 M parameters).
    SiameseOmniglot,
}

impl PaperModel {
    /// All four Table I models, in order.
    #[must_use]
    pub fn all() -> [PaperModel; 4] {
        [
            Self::Lenet5SignMnist,
            Self::CnnCifar10,
            Self::CnnStl10,
            Self::SiameseOmniglot,
        ]
    }

    /// Stable machine-readable name of the model, used by the
    /// `crosslight-server` wire protocol to reference a Table I workload by
    /// name instead of shipping the full per-layer job list.
    #[must_use]
    pub fn wire_name(&self) -> &'static str {
        match self {
            Self::Lenet5SignMnist => "lenet5_sign_mnist",
            Self::CnnCifar10 => "cnn_cifar10",
            Self::CnnStl10 => "cnn_stl10",
            Self::SiameseOmniglot => "siamese_omniglot",
        }
    }

    /// Parses a [`PaperModel::wire_name`] back into the model.
    #[must_use]
    pub fn from_wire_name(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|m| m.wire_name() == name)
    }

    /// The dataset name used in Table I.
    #[must_use]
    pub fn dataset_name(&self) -> &'static str {
        match self {
            Self::Lenet5SignMnist => "Sign MNIST",
            Self::CnnCifar10 => "CIFAR10",
            Self::CnnStl10 => "STL10",
            Self::SiameseOmniglot => "Omniglot",
        }
    }

    /// The full-size architecture of the model.
    #[must_use]
    pub fn spec(&self) -> ModelSpec {
        match self {
            Self::Lenet5SignMnist => ModelSpec::lenet5_sign_mnist(),
            Self::CnnCifar10 => ModelSpec::cnn_cifar10(),
            Self::CnnStl10 => ModelSpec::cnn_stl10(),
            Self::SiameseOmniglot => ModelSpec::siamese_omniglot(),
        }
    }
}

/// A full-size model architecture, described structurally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name.
    pub name: String,
    /// Which paper model this is.
    pub model: PaperModel,
    /// Input shape `[C, H, W]`.
    pub input_shape: [usize; 3],
    /// Ordered layer descriptions.
    pub layers: Vec<LayerSpec>,
    /// How many identical towers execute per inference (2 for the Siamese
    /// network; weights are shared so parameters are counted once, but the
    /// computation happens per tower).
    pub towers: usize,
}

impl ModelSpec {
    /// Model 1: LeNet-5-style network for Sign-MNIST (2 conv + 2 FC).
    #[must_use]
    pub fn lenet5_sign_mnist() -> Self {
        Self {
            name: "LeNet-5 (Sign MNIST)".into(),
            model: PaperModel::Lenet5SignMnist,
            input_shape: [1, 28, 28],
            layers: vec![
                LayerSpec::Conv {
                    in_channels: 1,
                    out_channels: 6,
                    kernel: 5,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv {
                    in_channels: 6,
                    out_channels: 16,
                    kernel: 5,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Flatten,
                LayerSpec::Dense {
                    in_features: 256,
                    out_features: 205,
                },
                LayerSpec::Relu,
                LayerSpec::Dense {
                    in_features: 205,
                    out_features: 24,
                },
            ],
            towers: 1,
        }
    }

    /// Model 2: custom CNN for CIFAR-10 (4 conv + 2 FC).
    #[must_use]
    pub fn cnn_cifar10() -> Self {
        Self {
            name: "CNN-4 (CIFAR-10)".into(),
            model: PaperModel::CnnCifar10,
            input_shape: [3, 32, 32],
            layers: vec![
                LayerSpec::Conv {
                    in_channels: 3,
                    out_channels: 32,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::Conv {
                    in_channels: 32,
                    out_channels: 64,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv {
                    in_channels: 64,
                    out_channels: 128,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::Conv {
                    in_channels: 128,
                    out_channels: 128,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Flatten,
                LayerSpec::Dense {
                    in_features: 3200,
                    out_features: 202,
                },
                LayerSpec::Relu,
                LayerSpec::Dense {
                    in_features: 202,
                    out_features: 10,
                },
            ],
            towers: 1,
        }
    }

    /// Model 3: custom CNN for STL-10 (7 conv + 2 FC).
    #[must_use]
    pub fn cnn_stl10() -> Self {
        Self {
            name: "CNN-7 (STL-10)".into(),
            model: PaperModel::CnnStl10,
            input_shape: [3, 96, 96],
            layers: vec![
                LayerSpec::Conv {
                    in_channels: 3,
                    out_channels: 32,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::Conv {
                    in_channels: 32,
                    out_channels: 64,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv {
                    in_channels: 64,
                    out_channels: 128,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::Conv {
                    in_channels: 128,
                    out_channels: 128,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv {
                    in_channels: 128,
                    out_channels: 256,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::Conv {
                    in_channels: 256,
                    out_channels: 256,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::Conv {
                    in_channels: 256,
                    out_channels: 256,
                    kernel: 3,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Flatten,
                LayerSpec::Dense {
                    in_features: 12_544,
                    out_features: 118,
                },
                LayerSpec::Relu,
                LayerSpec::Dense {
                    in_features: 118,
                    out_features: 10,
                },
            ],
            towers: 1,
        }
    }

    /// Model 4: Siamese CNN for Omniglot one-shot learning.
    ///
    /// Described as one twin tower (4 conv + 2 FC, weights shared); Table I's
    /// "8 CONV + 4 FC" counts both towers, which is captured by `towers = 2`.
    #[must_use]
    pub fn siamese_omniglot() -> Self {
        Self {
            name: "Siamese CNN (Omniglot)".into(),
            model: PaperModel::SiameseOmniglot,
            input_shape: [1, 105, 105],
            layers: vec![
                LayerSpec::Conv {
                    in_channels: 1,
                    out_channels: 64,
                    kernel: 10,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv {
                    in_channels: 64,
                    out_channels: 128,
                    kernel: 7,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv {
                    in_channels: 128,
                    out_channels: 128,
                    kernel: 4,
                },
                LayerSpec::Relu,
                LayerSpec::MaxPool { window: 2 },
                LayerSpec::Conv {
                    in_channels: 128,
                    out_channels: 256,
                    kernel: 4,
                },
                LayerSpec::Relu,
                LayerSpec::Flatten,
                LayerSpec::Dense {
                    in_features: 9216,
                    out_features: 4096,
                },
                LayerSpec::Relu,
                LayerSpec::Dense {
                    in_features: 4096,
                    out_features: 1,
                },
            ],
            towers: 2,
        }
    }

    /// Total trainable parameters (weights shared across towers are counted
    /// once, matching Table I).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match *l {
                LayerSpec::Conv {
                    in_channels,
                    out_channels,
                    kernel,
                } => out_channels * in_channels * kernel * kernel + out_channels,
                LayerSpec::Dense {
                    in_features,
                    out_features,
                } => out_features * in_features + out_features,
                _ => 0,
            })
            .sum()
    }

    /// Number of layers of each kind (Table I's CONV/FC columns count layers
    /// per executed tower).
    #[must_use]
    pub fn layer_counts(&self) -> (usize, usize) {
        let conv = self
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv { .. }))
            .count();
        let fc = self
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Dense { .. }))
            .count();
        (conv * self.towers, fc * self.towers)
    }

    /// Per-layer photonic dot-product workloads of one tower, walking the
    /// input shape through the network.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidParameter`] if the layer dimensions do
    /// not compose (e.g. a dense layer whose input size does not match the
    /// flattened feature map).
    pub fn layer_workloads(&self) -> Result<Vec<(LayerKind, DotProductWorkload)>> {
        let mut shape = vec![
            self.input_shape[0],
            self.input_shape[1],
            self.input_shape[2],
        ];
        let mut out = Vec::new();
        for layer in &self.layers {
            match *layer {
                LayerSpec::Conv {
                    in_channels,
                    out_channels,
                    kernel,
                } => {
                    if shape.len() != 3 || shape[0] != in_channels {
                        return Err(NeuralError::InvalidParameter {
                            name: "layers",
                            reason: format!(
                                "conv expects {in_channels} channels, feature map is {shape:?}"
                            ),
                        });
                    }
                    let oh = shape[1].saturating_sub(kernel) + 1;
                    let ow = shape[2].saturating_sub(kernel) + 1;
                    out.push((
                        LayerKind::Convolution,
                        DotProductWorkload {
                            dot_length: in_channels * kernel * kernel,
                            dot_count: out_channels * oh * ow,
                        },
                    ));
                    shape = vec![out_channels, oh, ow];
                }
                LayerSpec::MaxPool { window } => {
                    shape = vec![shape[0], shape[1] / window, shape[2] / window];
                }
                LayerSpec::Flatten => {
                    shape = vec![shape.iter().product()];
                }
                LayerSpec::Dense {
                    in_features,
                    out_features,
                } => {
                    let current: usize = shape.iter().product();
                    if current != in_features {
                        return Err(NeuralError::InvalidParameter {
                            name: "layers",
                            reason: format!(
                                "dense expects {in_features} inputs, feature map has {current}"
                            ),
                        });
                    }
                    out.push((
                        LayerKind::FullyConnected,
                        DotProductWorkload {
                            dot_length: in_features,
                            dot_count: out_features,
                        },
                    ));
                    shape = vec![out_features];
                }
                LayerSpec::Relu => {}
            }
        }
        Ok(out)
    }

    /// The synthetic dataset spec matched to this model for the Fig. 5 study.
    #[must_use]
    pub fn surrogate_dataset(&self, samples_per_class: usize) -> SyntheticSpec {
        match self.model {
            PaperModel::Lenet5SignMnist => SyntheticSpec::sign_mnist_like(samples_per_class),
            PaperModel::CnnCifar10 => SyntheticSpec::cifar10_like(samples_per_class),
            PaperModel::CnnStl10 => SyntheticSpec::stl10_like(samples_per_class),
            PaperModel::SiameseOmniglot => SyntheticSpec::omniglot_like(samples_per_class),
        }
    }

    /// Builds a small trainable surrogate with the same layer types, sized for
    /// the matching synthetic dataset.
    ///
    /// # Errors
    ///
    /// Propagates layer-construction errors (which do not occur for the
    /// built-in specs).
    pub fn build_surrogate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Sequential> {
        let dataset = self.surrogate_dataset(1);
        let classes = dataset.num_classes;
        let (c, h, w) = (dataset.channels, dataset.height, dataset.width);
        let mut model = Sequential::new(format!("{} surrogate", self.name), vec![c, h, w]);
        match self.model {
            PaperModel::Lenet5SignMnist => {
                model.push(Box::new(Conv2d::new(c, 6, 3, 1, rng)?));
                model.push(Box::new(Relu::new()));
                model.push(Box::new(MaxPool2d::new(2)?));
                model.push(Box::new(Flatten::new()));
                let features = 6 * ((h - 2) / 2) * ((w - 2) / 2);
                model.push(Box::new(Dense::new(features, 32, rng)?));
                model.push(Box::new(Relu::new()));
                model.push(Box::new(Dense::new(32, classes, rng)?));
            }
            PaperModel::CnnCifar10 => {
                model.push(Box::new(Conv2d::new(c, 8, 3, 1, rng)?));
                model.push(Box::new(Relu::new()));
                model.push(Box::new(MaxPool2d::new(2)?));
                model.push(Box::new(Flatten::new()));
                let features = 8 * ((h - 2) / 2) * ((w - 2) / 2);
                model.push(Box::new(Dense::new(features, 32, rng)?));
                model.push(Box::new(Relu::new()));
                model.push(Box::new(Dense::new(32, classes, rng)?));
            }
            PaperModel::CnnStl10 => {
                model.push(Box::new(Conv2d::new(c, 8, 3, 1, rng)?));
                model.push(Box::new(Relu::new()));
                model.push(Box::new(MaxPool2d::new(2)?));
                model.push(Box::new(Conv2d::new(8, 12, 3, 1, rng)?));
                model.push(Box::new(Relu::new()));
                model.push(Box::new(Flatten::new()));
                let after_pool = (h - 2) / 2;
                let features = 12 * (after_pool - 2) * (after_pool - 2);
                model.push(Box::new(Dense::new(features, 32, rng)?));
                model.push(Box::new(Relu::new()));
                model.push(Box::new(Dense::new(32, classes, rng)?));
            }
            PaperModel::SiameseOmniglot => {
                model.push(Box::new(Conv2d::new(c, 8, 3, 1, rng)?));
                model.push(Box::new(Relu::new()));
                model.push(Box::new(MaxPool2d::new(2)?));
                model.push(Box::new(Flatten::new()));
                let features = 8 * ((h - 2) / 2) * ((w - 2) / 2);
                model.push(Box::new(Dense::new(features, 48, rng)?));
                model.push(Box::new(Relu::new()));
                model.push(Box::new(Dense::new(48, classes, rng)?));
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Table I parameter counts.
    const TABLE_I: [(PaperModel, usize, usize, usize); 4] = [
        (PaperModel::Lenet5SignMnist, 2, 2, 60_074),
        (PaperModel::CnnCifar10, 4, 2, 890_410),
        (PaperModel::CnnStl10, 7, 2, 3_204_080),
        (PaperModel::SiameseOmniglot, 8, 4, 38_951_745),
    ];

    #[test]
    fn parameter_counts_match_table_i_within_one_percent() {
        for (model, _, _, expected) in TABLE_I {
            let spec = model.spec();
            let got = spec.parameter_count();
            let rel = (got as f64 - expected as f64).abs() / expected as f64;
            assert!(
                rel < 0.01,
                "{}: {got} parameters vs Table I {expected} ({:.2}% off)",
                spec.name,
                rel * 100.0
            );
        }
    }

    #[test]
    fn siamese_parameter_count_matches_exactly() {
        assert_eq!(ModelSpec::siamese_omniglot().parameter_count(), 38_951_745);
    }

    #[test]
    fn layer_counts_match_table_i() {
        for (model, conv, fc, _) in TABLE_I {
            let (got_conv, got_fc) = model.spec().layer_counts();
            assert_eq!(got_conv, conv, "{model:?} conv layers");
            assert_eq!(got_fc, fc, "{model:?} fc layers");
        }
    }

    #[test]
    fn workloads_compose_for_all_models() {
        for model in PaperModel::all() {
            let spec = model.spec();
            let workloads = spec.layer_workloads().expect("layers must compose");
            let conv_layers = workloads
                .iter()
                .filter(|(k, _)| *k == LayerKind::Convolution)
                .count();
            let fc_layers = workloads
                .iter()
                .filter(|(k, _)| *k == LayerKind::FullyConnected)
                .count();
            let (expected_conv, expected_fc) = spec.layer_counts();
            assert_eq!(conv_layers * spec.towers, expected_conv);
            assert_eq!(fc_layers * spec.towers, expected_fc);
            // Every workload is non-trivial.
            for (_, w) in &workloads {
                assert!(w.dot_length > 0 && w.dot_count > 0);
            }
        }
    }

    #[test]
    fn larger_models_have_more_macs() {
        let macs = |m: PaperModel| -> usize {
            let spec = m.spec();
            spec.layer_workloads()
                .unwrap()
                .iter()
                .map(|(_, w)| w.macs())
                .sum::<usize>()
                * spec.towers
        };
        // STL-10 (96×96 inputs, 7 conv) is the heaviest compute; LeNet the
        // lightest.
        assert!(macs(PaperModel::Lenet5SignMnist) < macs(PaperModel::CnnCifar10));
        assert!(macs(PaperModel::CnnCifar10) < macs(PaperModel::CnnStl10));
        assert!(macs(PaperModel::Lenet5SignMnist) < macs(PaperModel::SiameseOmniglot));
    }

    #[test]
    fn dataset_names_match_table_i() {
        assert_eq!(PaperModel::Lenet5SignMnist.dataset_name(), "Sign MNIST");
        assert_eq!(PaperModel::CnnCifar10.dataset_name(), "CIFAR10");
        assert_eq!(PaperModel::CnnStl10.dataset_name(), "STL10");
        assert_eq!(PaperModel::SiameseOmniglot.dataset_name(), "Omniglot");
    }

    #[test]
    fn wire_names_round_trip_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for model in PaperModel::all() {
            assert_eq!(PaperModel::from_wire_name(model.wire_name()), Some(model));
            assert!(seen.insert(model.wire_name()));
        }
        assert_eq!(PaperModel::from_wire_name("resnet50"), None);
    }

    #[test]
    fn surrogates_build_and_run() {
        let mut rng = StdRng::seed_from_u64(77);
        for model in PaperModel::all() {
            let spec = model.spec();
            let mut surrogate = spec.build_surrogate(&mut rng).unwrap();
            let dataset_spec = spec.surrogate_dataset(1);
            let input = crate::tensor::Tensor::zeros(dataset_spec.sample_shape());
            let out = surrogate.forward(&input).unwrap();
            assert_eq!(out.shape(), &[dataset_spec.num_classes]);
            // Surrogates stay small enough to train quickly.
            assert!(surrogate.parameter_count() < 60_000);
        }
    }
}
