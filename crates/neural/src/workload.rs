//! Extraction of the photonic dot-product workload of a network.
//!
//! CrossLight splits inference work into two pools: CONV-layer dot products
//! (short vectors, huge counts) run on the `n` CONV VDP units, and FC-layer
//! dot products (long vectors, modest counts) run on the `m` FC VDP units
//! (paper §IV.C).  A [`NetworkWorkload`] is the accelerator-facing summary of
//! one model: the list of dot-product jobs per layer, split by kind.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::layers::{DotProductWorkload, LayerKind};
use crate::model::Sequential;
use crate::zoo::ModelSpec;

/// The dot-product workload of one inference of one network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NetworkWorkload {
    /// Network name.
    pub name: String,
    /// Dot-product jobs contributed by convolution layers (one entry per
    /// layer).
    pub conv_layers: Vec<DotProductWorkload>,
    /// Dot-product jobs contributed by fully connected layers.
    pub fc_layers: Vec<DotProductWorkload>,
    /// Number of identical towers executed per inference (e.g. 2 for a
    /// Siamese network).
    pub towers: usize,
}

impl NetworkWorkload {
    /// Builds the workload of a full-size Table I model.
    ///
    /// # Errors
    ///
    /// Propagates shape-composition errors from the spec.
    pub fn from_spec(spec: &ModelSpec) -> Result<Self> {
        let mut conv_layers = Vec::new();
        let mut fc_layers = Vec::new();
        for (kind, work) in spec.layer_workloads()? {
            match kind {
                LayerKind::Convolution => conv_layers.push(work),
                LayerKind::FullyConnected => fc_layers.push(work),
                _ => {}
            }
        }
        Ok(Self {
            name: spec.name.clone(),
            conv_layers,
            fc_layers,
            towers: spec.towers,
        })
    }

    /// Builds the workload of a concrete trainable [`Sequential`] network.
    ///
    /// # Errors
    ///
    /// Propagates shape-composition errors from the model summary.
    pub fn from_sequential(model: &Sequential) -> Result<Self> {
        let mut conv_layers = Vec::new();
        let mut fc_layers = Vec::new();
        for layer in model.summary()? {
            if let Some(work) = layer.dot_products {
                match layer.kind {
                    LayerKind::Convolution => conv_layers.push(work),
                    LayerKind::FullyConnected => fc_layers.push(work),
                    _ => {}
                }
            }
        }
        Ok(Self {
            name: model.name().to_string(),
            conv_layers,
            fc_layers,
            towers: 1,
        })
    }

    /// Total multiply–accumulate operations per inference (all towers).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        let per_tower: u64 = self
            .conv_layers
            .iter()
            .chain(self.fc_layers.iter())
            .map(|w| w.macs() as u64)
            .sum();
        per_tower * self.towers as u64
    }

    /// Total number of dot products per inference (all towers).
    #[must_use]
    pub fn total_dot_products(&self) -> u64 {
        let per_tower: u64 = self
            .conv_layers
            .iter()
            .chain(self.fc_layers.iter())
            .map(|w| w.dot_count as u64)
            .sum();
        per_tower * self.towers as u64
    }

    /// Total MACs contributed by convolution layers (all towers).
    #[must_use]
    pub fn conv_macs(&self) -> u64 {
        self.conv_layers
            .iter()
            .map(|w| w.macs() as u64)
            .sum::<u64>()
            * self.towers as u64
    }

    /// Total MACs contributed by fully connected layers (all towers).
    #[must_use]
    pub fn fc_macs(&self) -> u64 {
        self.fc_layers.iter().map(|w| w.macs() as u64).sum::<u64>() * self.towers as u64
    }

    /// Longest dot product appearing in the FC pool (determines how much
    /// decomposition a K-sized FC VDP unit must perform).
    #[must_use]
    pub fn max_fc_length(&self) -> usize {
        self.fc_layers
            .iter()
            .map(|w| w.dot_length)
            .max()
            .unwrap_or(0)
    }

    /// Longest dot product appearing in the CONV pool.
    #[must_use]
    pub fn max_conv_length(&self) -> usize {
        self.conv_layers
            .iter()
            .map(|w| w.dot_length)
            .max()
            .unwrap_or(0)
    }

    /// Number of data bits produced per inference at `resolution_bits` per
    /// dot-product result — the denominator of the paper's energy-per-bit
    /// metric.
    #[must_use]
    pub fn output_bits(&self, resolution_bits: u32) -> u64 {
        self.total_dot_products() * u64::from(resolution_bits)
    }

    /// Platform-stable 64-bit fingerprint of the workload (name, per-layer
    /// dot-product jobs and tower count), used by the runtime layer as a
    /// cache-routing key.  Equal workloads always fingerprint equally; the
    /// converse is only probabilistic, so callers must still compare values.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        crate::fingerprint::fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use crate::zoo::PaperModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn workload_from_lenet_spec() {
        let spec = PaperModel::Lenet5SignMnist.spec();
        let w = NetworkWorkload::from_spec(&spec).unwrap();
        assert_eq!(w.conv_layers.len(), 2);
        assert_eq!(w.fc_layers.len(), 2);
        assert_eq!(w.towers, 1);
        // First conv: 6 output channels over 24×24 positions, 25-long dots.
        assert_eq!(w.conv_layers[0].dot_length, 25);
        assert_eq!(w.conv_layers[0].dot_count, 6 * 24 * 24);
        // FC pool is dominated by the 256-long layer.
        assert_eq!(w.max_fc_length(), 256);
        assert_eq!(w.max_conv_length(), 6 * 25);
        assert!(w.total_macs() > 100_000);
    }

    #[test]
    fn siamese_towers_double_the_compute() {
        let spec = PaperModel::SiameseOmniglot.spec();
        let w = NetworkWorkload::from_spec(&spec).unwrap();
        assert_eq!(w.towers, 2);
        let single_tower: u64 = w
            .conv_layers
            .iter()
            .chain(w.fc_layers.iter())
            .map(|l| l.macs() as u64)
            .sum();
        assert_eq!(w.total_macs(), 2 * single_tower);
    }

    #[test]
    fn workload_from_sequential_matches_summary() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Sequential::new("seq", vec![1, 10, 10]);
        model.push(Box::new(Conv2d::new(1, 4, 3, 1, &mut rng).unwrap()));
        model.push(Box::new(Relu::new()));
        model.push(Box::new(MaxPool2d::new(2).unwrap()));
        model.push(Box::new(Flatten::new()));
        model.push(Box::new(Dense::new(64, 10, &mut rng).unwrap()));
        let w = NetworkWorkload::from_sequential(&model).unwrap();
        assert_eq!(w.conv_layers.len(), 1);
        assert_eq!(w.fc_layers.len(), 1);
        assert_eq!(w.conv_layers[0].dot_count, 4 * 64);
        assert_eq!(w.fc_layers[0].dot_length, 64);
        assert_eq!(w.total_macs(), (9 * 4 * 64 + 64 * 10) as u64);
        assert_eq!(w.total_dot_products(), (4 * 64 + 10) as u64);
    }

    #[test]
    fn output_bits_scale_with_resolution() {
        let spec = PaperModel::CnnCifar10.spec();
        let w = NetworkWorkload::from_spec(&spec).unwrap();
        assert_eq!(w.output_bits(16), w.total_dot_products() * 16);
        assert_eq!(w.output_bits(4), w.total_dot_products() * 4);
        assert!(w.conv_macs() > w.fc_macs());
    }

    #[test]
    fn fingerprints_are_deterministic_and_distinguish_models() {
        let a = NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap();
        let b = NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        for model in [
            PaperModel::CnnCifar10,
            PaperModel::CnnStl10,
            PaperModel::SiameseOmniglot,
        ] {
            let other = NetworkWorkload::from_spec(&model.spec()).unwrap();
            assert_ne!(a.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    fn empty_pools_report_zero_lengths() {
        let w = NetworkWorkload {
            name: "empty".into(),
            conv_layers: vec![],
            fc_layers: vec![],
            towers: 1,
        };
        assert_eq!(w.max_fc_length(), 0);
        assert_eq!(w.max_conv_length(), 0);
        assert_eq!(w.total_macs(), 0);
    }
}
