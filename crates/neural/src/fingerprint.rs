//! Stable 64-bit fingerprints for cacheable values.
//!
//! The runtime layer memoizes simulation results keyed by
//! `(configuration, workload)` and shards traffic across workers by key.
//! Both uses need a hash that is *stable* — identical across processes,
//! platforms and runs — which `std::collections::hash_map::DefaultHasher`
//! does not guarantee.  [`StableHasher`] is FNV-1a over a canonical little-
//! endian byte stream: every integer write is widened to a fixed-width
//! little-endian encoding, so `usize` values fingerprint identically on
//! 32- and 64-bit targets.
//!
//! Fingerprints are *routing* hashes, not identity: two distinct values may
//! collide (2⁻⁶⁴ per pair), so equality checks must still compare the full
//! values.  The runtime's cache does exactly that.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hasher with a platform-independent byte encoding.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher in the standard FNV-1a offset state.
    #[must_use]
    pub const fn new() -> Self {
        Self { state: FNV_OFFSET }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    // Widen to 64 bits so fingerprints agree across pointer widths.
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

/// Fingerprints any hashable value through a fresh [`StableHasher`].
#[must_use]
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = StableHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // Reference values for the raw byte stream (classic FNV-1a tests).
        let mut h = StableHasher::new();
        h.write(b"");
        assert_eq!(h.finish(), FNV_OFFSET);
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fingerprint_is_deterministic_and_input_sensitive() {
        assert_eq!(fingerprint(&(1u32, 2usize)), fingerprint(&(1u32, 2usize)));
        assert_ne!(fingerprint(&(1u32, 2usize)), fingerprint(&(2u32, 1usize)));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
    }

    #[test]
    fn usize_hashes_like_u64() {
        assert_eq!(fingerprint(&7usize), fingerprint(&7u64));
    }
}
