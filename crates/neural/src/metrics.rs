//! Accuracy and loss metrics.

use crate::layers::softmax_into;
use crate::tensor::Tensor;

/// Cross-entropy loss of a logit vector against a class index, together with
/// the gradient with respect to the logits (`softmax(logits) − one_hot`).
#[must_use]
pub fn cross_entropy_with_grad(logits: &Tensor, target_class: usize) -> (f32, Tensor) {
    let mut grad = Tensor::default();
    let loss = cross_entropy_with_grad_into(logits, target_class, &mut grad);
    (loss, grad)
}

/// Destination-buffer form of [`cross_entropy_with_grad`]: writes the logit
/// gradient into a caller-owned tensor (allocation-free in steady state) and
/// returns the loss.
///
/// The probabilities come from the shared [`crate::layers::softmax_into`],
/// so results are bit-identical to the allocating form.
pub fn cross_entropy_with_grad_into(
    logits: &Tensor,
    target_class: usize,
    grad: &mut Tensor,
) -> f32 {
    softmax_into(logits, grad);
    let p_target = grad.as_slice()[target_class].max(1e-9);
    let loss = -p_target.ln();
    grad.as_mut_slice()[target_class] -= 1.0;
    loss
}

/// Classification accuracy of predicted class indices against labels.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must have equal length"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_is_low_for_confident_correct_prediction() {
        let confident = Tensor::from_vec(vec![3], vec![10.0, -5.0, -5.0]).unwrap();
        let (loss, grad) = cross_entropy_with_grad(&confident, 0);
        assert!(loss < 0.01);
        // Gradient pushes the correct logit up (negative gradient component).
        assert!(grad.as_slice()[0] < 0.0);
        assert!(grad.as_slice()[1] > 0.0);
    }

    #[test]
    fn cross_entropy_is_high_for_wrong_prediction() {
        let wrong = Tensor::from_vec(vec![3], vec![10.0, -5.0, -5.0]).unwrap();
        let (loss, _) = cross_entropy_with_grad(&wrong, 2);
        assert!(loss > 5.0);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let logits = Tensor::from_vec(vec![4], vec![0.3, -0.2, 0.9, 0.0]).unwrap();
        let (_, grad) = cross_entropy_with_grad(&logits, 1);
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert!((accuracy(&[0, 1, 2, 3], &[0, 1, 0, 3]) - 0.75).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn accuracy_panics_on_length_mismatch() {
        let _ = accuracy(&[0, 1], &[0]);
    }
}
