//! 2-D convolution layer (valid padding, square kernels).

use rand::Rng;

use crate::error::{NeuralError, Result};
use crate::tensor::{im2col_transposed_into, Im2colSpec, Tensor};

use super::{fake_quantize_slice, DotProductWorkload, Layer, LayerKind};

/// A 2-D convolution over `[C, H, W]` activations with square kernels and
/// valid padding.
///
/// The forward pass lowers the input with im2col and performs a matrix
/// multiplication, which is exactly the decomposition CrossLight's CONV VDP
/// units execute (paper Eqs. (1)–(4)).
///
/// All intermediate matrices (the transposed im2col columns, the gradient
/// scratch buffers) live in persistent per-layer workspaces, so
/// `forward_into`/`backward_into` perform **zero heap allocations in steady
/// state** — the buffers grow once to the working-set size on the first call
/// and are reused afterwards.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weights stored as `[out_channels, in_channels * kernel * kernel]`.
    weights: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    cached_input_shape: Option<[usize; 3]>,
    /// Transposed im2col columns of the last forward (`[L, P]`), cached for
    /// the backward pass and reused as scratch across calls.
    columns_t: Tensor,
    /// `[P, L]` scratch: the cached columns back in row-per-patch layout,
    /// rebuilt by `backward_into` for the weight-gradient SAXPY.
    columns: Tensor,
    /// `[out_c, L]` scratch: the weight-gradient contribution of one call.
    dw: Tensor,
    /// `[L, P]` scratch: the column gradients scattered back by col2im.
    dcols: Tensor,
}

impl Conv2d {
    /// Creates a convolution layer with Xavier-style initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidParameter`] if any dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NeuralError::InvalidParameter {
                name: "conv2d",
                reason: format!(
                    "dimensions must be positive, got in={in_channels} out={out_channels} \
                     kernel={kernel} stride={stride}"
                ),
            });
        }
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Ok(Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            weights: Tensor::random_uniform(vec![out_channels, fan_in], limit, rng),
            bias: Tensor::zeros(vec![out_channels]),
            weight_grad: Tensor::zeros(vec![out_channels, fan_in]),
            bias_grad: Tensor::zeros(vec![out_channels]),
            cached_input_shape: None,
            columns_t: Tensor::default(),
            columns: Tensor::default(),
            dw: Tensor::default(),
            dcols: Tensor::default(),
        })
    }

    /// Returns the kernel size.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Returns the number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Returns the weight matrix (`[out_channels, in_channels·k·k]`).
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    fn spec_for(&self, input_shape: &[usize]) -> Result<Im2colSpec> {
        if input_shape.len() != 3 || input_shape[0] != self.in_channels {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![self.in_channels, 0, 0],
                actual: input_shape.to_vec(),
            });
        }
        let spec = Im2colSpec {
            in_channels: self.in_channels,
            height: input_shape[1],
            width: input_shape[2],
            kernel: self.kernel,
            stride: self.stride,
        };
        if spec.out_height() == 0 || spec.out_width() == 0 {
            return Err(NeuralError::InvalidParameter {
                name: "input",
                reason: format!(
                    "input {}x{} is smaller than the {}x{} kernel",
                    input_shape[1], input_shape[2], self.kernel, self.kernel
                ),
            });
        }
        Ok(spec)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv{}x{}_{}to{}",
            self.kernel, self.kernel, self.in_channels, self.out_channels
        )
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Convolution
    }

    fn forward_into(&mut self, input: &Tensor, output: &mut Tensor) -> Result<()> {
        let spec = self.spec_for(input.shape())?;
        // cols: [L, P] — produced directly in the transposed layout the
        // multiplication consumes, fusing away the old per-call transpose.
        im2col_transposed_into(input, &spec, &mut self.columns_t)?;
        let out_h = spec.out_height();
        let out_w = spec.out_width();
        // y = W · colsᵀ → [out_c, P], blocked and allocation-free.
        self.weights.matmul_into(&self.columns_t, output)?;
        {
            let data = output.as_mut_slice();
            let pixels = out_h * out_w;
            for c in 0..self.out_channels {
                let b = self.bias.as_slice()[c];
                for d in &mut data[c * pixels..(c + 1) * pixels] {
                    *d += b;
                }
            }
        }
        self.cached_input_shape = Some([spec.in_channels, spec.height, spec.width]);
        output.reshape_in_place(&[self.out_channels, out_h, out_w])
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> Result<()> {
        let input_shape = self
            .cached_input_shape
            .ok_or_else(|| NeuralError::InvalidState {
                reason: "backward called before forward".into(),
            })?;
        let spec = self.spec_for(&input_shape)?;
        let pixels = spec.out_height() * spec.out_width();
        if grad_output.len() != self.out_channels * pixels {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![self.out_channels, spec.out_height(), spec.out_width()],
                actual: grad_output.shape().to_vec(),
            });
        }
        let cols_len = spec.column_length();
        // G viewed as [out_c, P] without cloning: the data is contiguous.
        let g = grad_output.as_slice();
        // dW = G · cols ([out_c, P] x [P, L]) through the blocked kernel:
        // each dW element accumulates over p in ascending order — the naive
        // chain — streaming contiguous rows of the patch-major column
        // matrix, rebuilt here from the cached transposed layout.  (Feeding
        // the cached [L, P] layout to the fused dot-form kernel instead
        // would avoid this transpose but serialize each reduction into a
        // latency-bound scalar chain — measurably slower than transpose +
        // SAXPY matmul.)  dW then accumulates into the persistent gradient
        // exactly as the unfused path did.  The kernels zero their own
        // destinations, so the scratch is resized without a redundant fill.
        self.columns_t.transpose_into(&mut self.columns)?;
        self.dw.resize_for_overwrite(&[self.out_channels, cols_len]);
        crate::tensor::matmul_slices(
            g,
            self.columns.as_slice(),
            self.dw.as_mut_slice(),
            self.out_channels,
            pixels,
            cols_len,
        );
        self.weight_grad.add_assign(&self.dw)?;
        // db += row sums of G.
        {
            let gb = self.bias_grad.as_mut_slice();
            for c in 0..self.out_channels {
                gb[c] += g[c * pixels..(c + 1) * pixels].iter().sum::<f32>();
            }
        }
        // dcols = Wᵀ · G → [L, P], fused (no weight transpose materialized,
        // same c-ascending per-element chain as an explicit Wᵀ·G); then
        // scatter back to the input (col2im).
        self.dcols.resize_for_overwrite(&[cols_len, pixels]);
        crate::tensor::transpose_a_matmul_slices(
            self.weights.as_slice(),
            g,
            self.dcols.as_mut_slice(),
            self.out_channels,
            cols_len,
            pixels,
        );
        grad_input.reset(&[spec.in_channels, spec.height, spec.width]);
        {
            let dxs = grad_input.as_mut_slice();
            let dcs = self.dcols.as_slice();
            let cols_len = spec.column_length();
            for oy in 0..spec.out_height() {
                for ox in 0..spec.out_width() {
                    let p = oy * spec.out_width() + ox;
                    let mut col = 0;
                    for c in 0..spec.in_channels {
                        for ky in 0..spec.kernel {
                            for kx in 0..spec.kernel {
                                let iy = oy * spec.stride + ky;
                                let ix = ox * spec.stride + kx;
                                dxs[c * spec.height * spec.width + iy * spec.width + ix] +=
                                    dcs[col * pixels + p];
                                col += 1;
                            }
                        }
                    }
                    debug_assert_eq!(col, cols_len);
                }
            }
        }
        Ok(())
    }

    fn apply_gradients(&mut self, learning_rate: f32) {
        for (w, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(self.weight_grad.as_slice())
        {
            *w -= learning_rate * g;
        }
        for (b, g) in self
            .bias
            .as_mut_slice()
            .iter_mut()
            .zip(self.bias_grad.as_slice())
        {
            *b -= learning_rate * g;
        }
        self.zero_gradients();
    }

    fn zero_gradients(&mut self) {
        self.weight_grad.as_mut_slice().fill(0.0);
        self.bias_grad.as_mut_slice().fill(0.0);
    }

    fn parameter_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel + self.out_channels
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        let spec = self.spec_for(input_shape)?;
        Ok(vec![self.out_channels, spec.out_height(), spec.out_width()])
    }

    fn quantize_parameters(&mut self, bits: u32) {
        fake_quantize_slice(self.weights.as_mut_slice(), bits);
        fake_quantize_slice(self.bias.as_mut_slice(), bits);
    }

    fn dot_products(&self, input_shape: &[usize]) -> Result<Option<DotProductWorkload>> {
        let spec = self.spec_for(input_shape)?;
        Ok(Some(DotProductWorkload {
            dot_length: spec.column_length(),
            dot_count: self.out_channels * spec.out_height() * spec.out_width(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn forward_matches_manual_2x2_convolution() {
        let mut conv = Conv2d::new(1, 1, 2, 1, &mut rng()).unwrap();
        conv.weights = Tensor::from_vec(vec![1, 4], vec![1.0, 0.5, 0.25, 0.125]).unwrap();
        conv.bias = Tensor::from_vec(vec![1], vec![0.1]).unwrap();
        let input =
            Tensor::from_vec(vec![1, 3, 3], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]).unwrap();
        let y = conv.forward(&input).unwrap();
        assert_eq!(y.shape(), &[1, 2, 2]);
        // Top-left patch [1,2,4,5] · [1,0.5,0.25,0.125] + 0.1 = 1+1+1+0.625+0.1.
        assert!((y.as_slice()[0] - 3.725).abs() < 1e-5);
    }

    #[test]
    fn output_shape_and_workload() {
        let conv = Conv2d::new(3, 32, 3, 1, &mut rng()).unwrap();
        assert_eq!(conv.output_shape(&[3, 32, 32]).unwrap(), vec![32, 30, 30]);
        assert_eq!(conv.parameter_count(), 32 * 3 * 9 + 32);
        let w = conv.dot_products(&[3, 32, 32]).unwrap().unwrap();
        assert_eq!(w.dot_length, 27);
        assert_eq!(w.dot_count, 32 * 30 * 30);
        assert_eq!(conv.kind(), LayerKind::Convolution);
    }

    #[test]
    fn stride_two_halves_output() {
        let conv = Conv2d::new(1, 4, 2, 2, &mut rng()).unwrap();
        assert_eq!(conv.output_shape(&[1, 8, 8]).unwrap(), vec![4, 4, 4]);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(Conv2d::new(0, 1, 3, 1, &mut rng()).is_err());
        assert!(Conv2d::new(1, 1, 3, 0, &mut rng()).is_err());
        let mut conv = Conv2d::new(2, 4, 3, 1, &mut rng()).unwrap();
        assert!(conv.forward(&Tensor::zeros(vec![1, 8, 8])).is_err());
        assert!(conv.forward(&Tensor::zeros(vec![2, 2, 2])).is_err());
        assert!(conv.backward(&Tensor::zeros(vec![4, 6, 6])).is_err());
    }

    #[test]
    fn backward_input_gradient_matches_finite_differences() {
        let mut conv = Conv2d::new(1, 2, 2, 1, &mut rng()).unwrap();
        let x = Tensor::from_vec(
            vec![1, 3, 3],
            vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, 0.8, -0.9],
        )
        .unwrap();
        let y = conv.forward(&x).unwrap();
        let grad = Tensor::full(vec![2, 2, 2], 1.0);
        let dx = conv.backward(&grad).unwrap();
        let eps = 1e-3f32;
        for i in [0usize, 4, 8] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut c2 = conv.clone();
            let fp = c2.forward(&xp).unwrap().sum();
            let fm = c2.forward(&xm).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[i]).abs() < 1e-2,
                "index {i}: analytic {} numeric {numeric}",
                dx.as_slice()[i]
            );
        }
        drop(y);
    }

    #[test]
    fn gradient_descent_reduces_reconstruction_loss() {
        let mut conv = Conv2d::new(1, 1, 2, 1, &mut rng()).unwrap();
        let x = Tensor::from_vec(vec![1, 3, 3], vec![1., 0., 1., 0., 1., 0., 1., 0., 1.]).unwrap();
        let target = Tensor::full(vec![1, 2, 2], 1.0);
        let mut losses = Vec::new();
        for _ in 0..60 {
            let y = conv.forward(&x).unwrap();
            let diff = y.sub(&target).unwrap();
            losses.push(diff.as_slice().iter().map(|d| d * d).sum::<f32>());
            conv.backward(&diff.scale(2.0)).unwrap();
            conv.apply_gradients(0.02);
        }
        assert!(losses.last().unwrap() < &(losses[0] * 0.2));
    }

    #[test]
    fn into_passes_reuse_buffers_and_match_allocating_passes() {
        let mut conv_a = Conv2d::new(2, 3, 3, 1, &mut rng()).unwrap();
        let mut conv_b = conv_a.clone();
        let mut rng2 = StdRng::seed_from_u64(77);
        let mut out = Tensor::default();
        let mut dx = Tensor::default();
        for _ in 0..3 {
            let x = Tensor::random_uniform(vec![2, 7, 7], 1.0, &mut rng2);
            let g = Tensor::random_uniform(vec![3, 5, 5], 1.0, &mut rng2);
            conv_a.forward_into(&x, &mut out).unwrap();
            assert_eq!(out, conv_b.forward(&x).unwrap());
            conv_a.backward_into(&g, &mut dx).unwrap();
            assert_eq!(dx, conv_b.backward(&g).unwrap());
            assert_eq!(conv_a.weight_grad, conv_b.weight_grad);
            assert_eq!(conv_a.bias_grad, conv_b.bias_grad);
        }
    }

    #[test]
    fn quantization_coarsens_kernel_values() {
        let mut conv = Conv2d::new(2, 4, 3, 1, &mut rng()).unwrap();
        conv.quantize_parameters(1);
        let mut distinct: Vec<i32> = conv
            .weights()
            .as_slice()
            .iter()
            .map(|v| (v * 1e5) as i32)
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 2, "1-bit weights have at most two levels");
    }
}
