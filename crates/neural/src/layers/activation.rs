//! Elementwise activation layers.

use crate::error::{NeuralError, Result};
use crate::tensor::Tensor;

use super::{DotProductWorkload, Layer, LayerKind};

/// Rectified linear unit, `y = max(x, 0)`.
///
/// In the photonic accelerator the non-linearity is realised by
/// electro-absorption modulators after the summation PDs; for training and
/// accuracy evaluation the mathematical ReLU is what matters.  The sign mask
/// of the last forward lives in a persistent buffer, so both passes are
/// allocation-free in steady state.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
    cached_shape: Vec<usize>,
    has_cached: bool,
}

impl Relu {
    /// Creates a ReLU activation layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> String {
        "relu".to_string()
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation
    }

    fn forward_into(&mut self, input: &Tensor, output: &mut Tensor) -> Result<()> {
        output.resize_for_overwrite(input.shape());
        self.mask.clear();
        self.mask.reserve(input.len());
        for (o, &x) in output.as_mut_slice().iter_mut().zip(input.as_slice()) {
            self.mask.push(x > 0.0);
            *o = x.max(0.0);
        }
        self.cached_shape.clear();
        self.cached_shape.extend_from_slice(input.shape());
        self.has_cached = true;
        Ok(())
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> Result<()> {
        if !self.has_cached {
            return Err(NeuralError::InvalidState {
                reason: "backward called before forward".into(),
            });
        }
        if grad_output.len() != self.mask.len() {
            return Err(NeuralError::ShapeMismatch {
                expected: self.cached_shape.clone(),
                actual: grad_output.shape().to_vec(),
            });
        }
        grad_input.resize_for_overwrite(&self.cached_shape);
        for ((d, &g), &m) in grad_input
            .as_mut_slice()
            .iter_mut()
            .zip(grad_output.as_slice())
            .zip(self.mask.iter())
        {
            *d = if m { g } else { 0.0 };
        }
        Ok(())
    }

    fn apply_gradients(&mut self, _learning_rate: f32) {}

    fn zero_gradients(&mut self) {}

    fn parameter_count(&self) -> usize {
        0
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        Ok(input_shape.to_vec())
    }

    fn quantize_parameters(&mut self, _bits: u32) {}

    fn dot_products(&self, _input_shape: &[usize]) -> Result<Option<DotProductWorkload>> {
        Ok(None)
    }
}

/// Numerically stable softmax over a rank-1 tensor, used by the classifier
/// head and the cross-entropy loss.
#[must_use]
pub fn softmax(logits: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    softmax_into(logits, &mut out);
    out
}

/// Destination-buffer form of [`softmax`] (allocation-free in steady state),
/// shared with the cross-entropy gradient so both paths compute the exact
/// same max-shift / exp / divide-by-sum sequence.
pub fn softmax_into(logits: &Tensor, out: &mut Tensor) {
    let max = logits.max();
    out.copy_from(logits);
    for v in out.as_mut_slice() {
        *v = (*v - max).exp();
    }
    let sum = out.sum();
    for v in out.as_mut_slice() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative_values() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = relu.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![3], vec![-1.0, 1.0, 2.0]).unwrap();
        relu.forward(&x).unwrap();
        let dx = relu
            .backward(&Tensor::from_vec(vec![3], vec![5.0, 5.0, 5.0]).unwrap())
            .unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 5.0]);
        assert!(relu.backward(&Tensor::zeros(vec![2])).is_err());
    }

    #[test]
    fn relu_has_no_parameters() {
        let relu = Relu::new();
        assert_eq!(relu.parameter_count(), 0);
        assert_eq!(relu.output_shape(&[4, 5, 5]).unwrap(), vec![4, 5, 5]);
        assert!(relu.dot_products(&[4]).unwrap().is_none());
        assert_eq!(relu.kind(), LayerKind::Activation);
    }

    #[test]
    fn relu_backward_before_forward_errors() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(vec![3])).is_err());
    }

    #[test]
    fn softmax_sums_to_one_and_orders_probabilities() {
        let logits = Tensor::from_vec(vec![3], vec![1.0, 3.0, 2.0]).unwrap();
        let p = softmax(&logits);
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert_eq!(p.argmax(), 1);
        // Stability with large logits.
        let big = Tensor::from_vec(vec![2], vec![1000.0, 1001.0]).unwrap();
        let pb = softmax(&big);
        assert!(pb.as_slice().iter().all(|v| v.is_finite()));
        assert!((pb.sum() - 1.0).abs() < 1e-6);
    }
}
