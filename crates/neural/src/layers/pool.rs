//! Pooling layers (executed in the electronic domain by CrossLight).

use crate::error::{NeuralError, Result};
use crate::tensor::Tensor;

use super::{DotProductWorkload, Layer, LayerKind};

/// 2-D max pooling with a square window and equal stride.
///
/// The argmax indices of the last forward live in a persistent buffer, so
/// both passes are allocation-free in steady state.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    cached_input_shape: Option<[usize; 3]>,
    /// Flat source index of the winning element per output cell, reused
    /// across calls.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with the given window (window == stride).
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidParameter`] if the window is zero.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NeuralError::InvalidParameter {
                name: "window",
                reason: "pooling window must be positive".into(),
            });
        }
        Ok(Self {
            window,
            cached_input_shape: None,
            argmax: Vec::new(),
        })
    }

    fn out_dims(&self, shape: &[usize]) -> Result<(usize, usize, usize)> {
        if shape.len() != 3 {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![0, 0, 0],
                actual: shape.to_vec(),
            });
        }
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        if h < self.window || w < self.window {
            return Err(NeuralError::InvalidParameter {
                name: "input",
                reason: format!("input {h}x{w} smaller than window {}", self.window),
            });
        }
        Ok((c, h / self.window, w / self.window))
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!("maxpool{}", self.window)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pooling
    }

    fn forward_into(&mut self, input: &Tensor, output: &mut Tensor) -> Result<()> {
        let (c, oh, ow) = self.out_dims(input.shape())?;
        let (h, w) = (input.shape()[1], input.shape()[2]);
        output.resize_for_overwrite(&[c, oh, ow]);
        self.argmax.clear();
        self.argmax.resize(c * oh * ow, 0);
        let src = input.as_slice();
        let dst = output.as_mut_slice();
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..self.window {
                        for kx in 0..self.window {
                            let iy = oy * self.window + ky;
                            let ix = ox * self.window + kx;
                            let idx = ch * h * w + iy * w + ix;
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ch * oh * ow + oy * ow + ox;
                    dst[o] = best;
                    self.argmax[o] = best_idx;
                }
            }
        }
        self.cached_input_shape = Some([c, h, w]);
        Ok(())
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> Result<()> {
        let shape = self
            .cached_input_shape
            .ok_or_else(|| NeuralError::InvalidState {
                reason: "backward called before forward".into(),
            })?;
        if grad_output.len() != self.argmax.len() {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![self.argmax.len()],
                actual: grad_output.shape().to_vec(),
            });
        }
        grad_input.reset(&[shape[0], shape[1], shape[2]]);
        let dxs = grad_input.as_mut_slice();
        for (o, &src_idx) in self.argmax.iter().enumerate() {
            dxs[src_idx] += grad_output.as_slice()[o];
        }
        Ok(())
    }

    fn apply_gradients(&mut self, _learning_rate: f32) {}

    fn zero_gradients(&mut self) {}

    fn parameter_count(&self) -> usize {
        0
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        let (c, oh, ow) = self.out_dims(input_shape)?;
        Ok(vec![c, oh, ow])
    }

    fn quantize_parameters(&mut self, _bits: u32) {}

    fn dot_products(&self, _input_shape: &[usize]) -> Result<Option<DotProductWorkload>> {
        Ok(None)
    }
}

/// 2-D average pooling with a square window and equal stride.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    cached_input_shape: Option<[usize; 3]>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer with the given window.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidParameter`] if the window is zero.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NeuralError::InvalidParameter {
                name: "window",
                reason: "pooling window must be positive".into(),
            });
        }
        Ok(Self {
            window,
            cached_input_shape: None,
        })
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        format!("avgpool{}", self.window)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pooling
    }

    fn forward_into(&mut self, input: &Tensor, output: &mut Tensor) -> Result<()> {
        let shape = input.shape();
        if shape.len() != 3 || shape[1] < self.window || shape[2] < self.window {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![0, self.window, self.window],
                actual: shape.to_vec(),
            });
        }
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let (oh, ow) = (h / self.window, w / self.window);
        output.resize_for_overwrite(&[c, oh, ow]);
        let src = input.as_slice();
        let dst = output.as_mut_slice();
        let norm = (self.window * self.window) as f32;
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..self.window {
                        for kx in 0..self.window {
                            let iy = oy * self.window + ky;
                            let ix = ox * self.window + kx;
                            acc += src[ch * h * w + iy * w + ix];
                        }
                    }
                    dst[ch * oh * ow + oy * ow + ox] = acc / norm;
                }
            }
        }
        self.cached_input_shape = Some([c, h, w]);
        Ok(())
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> Result<()> {
        let shape = self
            .cached_input_shape
            .ok_or_else(|| NeuralError::InvalidState {
                reason: "backward called before forward".into(),
            })?;
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let (oh, ow) = (h / self.window, w / self.window);
        if grad_output.len() != c * oh * ow {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![c, oh, ow],
                actual: grad_output.shape().to_vec(),
            });
        }
        grad_input.reset(&[c, h, w]);
        let dxs = grad_input.as_mut_slice();
        let g = grad_output.as_slice();
        let norm = (self.window * self.window) as f32;
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let go = g[ch * oh * ow + oy * ow + ox] / norm;
                    for ky in 0..self.window {
                        for kx in 0..self.window {
                            let iy = oy * self.window + ky;
                            let ix = ox * self.window + kx;
                            dxs[ch * h * w + iy * w + ix] += go;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn apply_gradients(&mut self, _learning_rate: f32) {}

    fn zero_gradients(&mut self) {}

    fn parameter_count(&self) -> usize {
        0
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        if input_shape.len() != 3 {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![0, 0, 0],
                actual: input_shape.to_vec(),
            });
        }
        Ok(vec![
            input_shape[0],
            input_shape[1] / self.window,
            input_shape[2] / self.window,
        ])
    }

    fn quantize_parameters(&mut self, _bits: u32) {}

    fn dot_products(&self, _input_shape: &[usize]) -> Result<Option<DotProductWorkload>> {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_selects_maxima() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let input = Tensor::from_vec(
            vec![1, 4, 4],
            vec![
                1., 2., 5., 6., 3., 4., 7., 8., 9., 10., 13., 14., 11., 12., 15., 16.,
            ],
        )
        .unwrap();
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_gradient_to_maxima() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        pool.forward(&input).unwrap();
        let dx = pool.backward(&Tensor::full(vec![1, 1, 1], 2.5)).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_backward_before_forward_errors() {
        let mut pool = MaxPool2d::new(2).unwrap();
        assert!(pool.backward(&Tensor::zeros(vec![1])).is_err());
    }

    #[test]
    fn avgpool_averages_and_distributes_gradient() {
        let mut pool = AvgPool2d::new(2).unwrap();
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[3.0]);
        let dx = pool.backward(&Tensor::full(vec![1, 1, 1], 4.0)).unwrap();
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn pooling_layers_have_no_parameters_or_dot_products() {
        let pool = MaxPool2d::new(2).unwrap();
        assert_eq!(pool.parameter_count(), 0);
        assert!(pool.dot_products(&[4, 8, 8]).unwrap().is_none());
        assert_eq!(pool.kind(), LayerKind::Pooling);
        let avg = AvgPool2d::new(3).unwrap();
        assert_eq!(avg.parameter_count(), 0);
        assert!(avg.dot_products(&[4, 9, 9]).unwrap().is_none());
    }

    #[test]
    fn output_shapes_and_errors() {
        let pool = MaxPool2d::new(2).unwrap();
        assert_eq!(pool.output_shape(&[16, 10, 10]).unwrap(), vec![16, 5, 5]);
        assert!(pool.output_shape(&[16, 1, 1]).is_err());
        assert!(pool.output_shape(&[16, 10]).is_err());
        assert!(MaxPool2d::new(0).is_err());
        assert!(AvgPool2d::new(0).is_err());
        let mut p = MaxPool2d::new(2).unwrap();
        p.forward(&Tensor::zeros(vec![1, 4, 4])).unwrap();
        assert!(p.backward(&Tensor::zeros(vec![1])).is_err());
    }
}
