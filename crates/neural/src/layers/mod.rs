//! Neural-network layers with forward and backward passes.
//!
//! Only the layer types that appear in the paper's Table I models are
//! provided: 2-D convolutions, fully connected (dense) layers, max/average
//! pooling, flattening and ReLU activations.  Pooling and normalisation run in
//! the electronic domain in CrossLight, but the substrate still needs them to
//! train and evaluate the models for the Fig. 5 quantization study.

mod activation;
mod conv;
mod dense;
mod flatten;
mod pool;

pub use activation::{softmax, softmax_into, Relu};
pub use conv::Conv2d;
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::tensor::Tensor;

/// Categories of layers, used by the workload extractor to decide which
/// accelerator sub-unit (CONV pool vs. FC pool vs. electronic) executes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution — runs on the CONV VDP units.
    Convolution,
    /// Fully connected layer — runs on the FC VDP units.
    FullyConnected,
    /// Pooling — executed electronically.
    Pooling,
    /// Shape manipulation with no arithmetic.
    Reshape,
    /// Elementwise non-linearity — executed by the optoelectronic non-linearity
    /// devices / electronics.
    Activation,
}

/// The vector-dot-product workload one layer contributes to an accelerator:
/// `dot_count` dot products of `dot_length` elements each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DotProductWorkload {
    /// Length of each dot product.
    pub dot_length: usize,
    /// Number of dot products per inference.
    pub dot_count: usize,
}

impl DotProductWorkload {
    /// Total multiply–accumulate operations represented by this workload.
    #[must_use]
    pub fn macs(&self) -> usize {
        self.dot_length * self.dot_count
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches whatever `backward` needs, and
/// gradient application is a separate step so an optimizer can decide when to
/// update.
///
/// The primitive pass methods are the destination-buffer
/// [`Layer::forward_into`] / [`Layer::backward_into`]: together with each
/// layer's persistent internal workspaces (im2col scratch, cached columns,
/// gradient buffers) they perform **zero heap allocations in steady state**
/// (i.e. once buffer capacities have grown to the shapes in use).  The
/// allocating [`Layer::forward`] / [`Layer::backward`] conveniences are
/// provided wrappers.
pub trait Layer: std::fmt::Debug {
    /// Human-readable layer name (e.g. `"conv3x3x64"`).
    fn name(&self) -> String;

    /// The category this layer belongs to.
    fn kind(&self) -> LayerKind;

    /// Runs the layer on one sample, writing the result into a caller-owned
    /// tensor (reusing its buffer) and caching state for `backward`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape does not match the layer.
    fn forward_into(&mut self, input: &Tensor, output: &mut Tensor) -> Result<()>;

    /// Backpropagates the gradient of the loss with respect to this layer's
    /// output, accumulating parameter gradients and writing the gradient with
    /// respect to the input into a caller-owned tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if called before `forward` or with a mismatched
    /// gradient shape.
    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> Result<()>;

    /// Allocating convenience wrapper around [`Layer::forward_into`].
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape does not match the layer.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut output = Tensor::default();
        self.forward_into(input, &mut output)?;
        Ok(output)
    }

    /// Allocating convenience wrapper around [`Layer::backward_into`].
    ///
    /// # Errors
    ///
    /// Returns an error if called before `forward` or with a mismatched
    /// gradient shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut grad_input = Tensor::default();
        self.backward_into(grad_output, &mut grad_input)?;
        Ok(grad_input)
    }

    /// Applies accumulated gradients with vanilla SGD and clears them.
    fn apply_gradients(&mut self, learning_rate: f32);

    /// Clears accumulated gradients without applying them.
    fn zero_gradients(&mut self);

    /// Number of trainable parameters.
    fn parameter_count(&self) -> usize;

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>>;

    /// Fake-quantizes the layer's parameters in place to `bits` of uniform
    /// symmetric resolution (no-op for parameter-free layers).
    fn quantize_parameters(&mut self, bits: u32);

    /// The dot-product workload this layer contributes per inference, if it
    /// runs on the photonic substrate.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn dot_products(&self, input_shape: &[usize]) -> Result<Option<DotProductWorkload>>;
}

/// Fake-quantizes a slice of values in place to `bits` of uniform symmetric
/// resolution, using the slice's absolute maximum as the scale.
///
/// With `bits == 0` the slice is zeroed (no information can be represented);
/// with `bits >= 24` the values are left untouched (beyond `f32` mantissa
/// precision there is nothing to round).
pub(crate) fn fake_quantize_slice(values: &mut [f32], bits: u32) {
    if bits >= 24 || values.is_empty() {
        return;
    }
    if bits == 0 {
        values.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let max_abs = values.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
    if max_abs == 0.0 {
        return;
    }
    let levels = (1u64 << (bits - 1)) as f32;
    let scale = max_abs / levels;
    for v in values.iter_mut() {
        let q = (*v / scale).round().clamp(-levels, levels - 1.0);
        *v = q * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_macs() {
        let w = DotProductWorkload {
            dot_length: 25,
            dot_count: 100,
        };
        assert_eq!(w.macs(), 2500);
    }

    #[test]
    fn fake_quantize_reduces_distinct_values() {
        let mut values: Vec<f32> = (0..100).map(|i| (i as f32) / 100.0 - 0.5).collect();
        fake_quantize_slice(&mut values, 2);
        let mut distinct: Vec<i32> = values.iter().map(|v| (v * 1000.0) as i32).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 4, "2-bit quantization leaves ≤4 levels");
    }

    #[test]
    fn fake_quantize_high_bits_is_identity() {
        let mut values = vec![0.123f32, -0.456, 0.789];
        let original = values.clone();
        fake_quantize_slice(&mut values, 24);
        assert_eq!(values, original);
    }

    #[test]
    fn fake_quantize_zero_bits_zeroes() {
        let mut values = vec![0.5f32, -0.25];
        fake_quantize_slice(&mut values, 0);
        assert!(values.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fake_quantize_error_shrinks_with_bits() {
        let original: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.37).sin()).collect();
        let error_at = |bits: u32| {
            let mut q = original.clone();
            fake_quantize_slice(&mut q, bits);
            original
                .iter()
                .zip(q.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(error_at(2) > error_at(4));
        assert!(error_at(4) > error_at(8));
        assert!(error_at(8) > error_at(16));
    }
}
