//! Flattening layer (shape adapter between conv and dense stages).

use crate::error::{NeuralError, Result};
use crate::tensor::Tensor;

use super::{DotProductWorkload, Layer, LayerKind};

/// Flattens any input tensor to rank 1 (and restores the shape on backward).
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
    has_cached: bool,
}

impl Flatten {
    /// Creates a flatten layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "flatten".to_string()
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Reshape
    }

    fn forward_into(&mut self, input: &Tensor, output: &mut Tensor) -> Result<()> {
        self.cached_shape.clear();
        self.cached_shape.extend_from_slice(input.shape());
        self.has_cached = true;
        output.copy_from(input);
        output.reshape_in_place(&[input.len()])
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> Result<()> {
        if !self.has_cached {
            return Err(NeuralError::InvalidState {
                reason: "backward called before forward".into(),
            });
        }
        grad_input.copy_from(grad_output);
        grad_input.reshape_in_place(&self.cached_shape)
    }

    fn apply_gradients(&mut self, _learning_rate: f32) {}

    fn zero_gradients(&mut self) {}

    fn parameter_count(&self) -> usize {
        0
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        Ok(vec![input_shape.iter().product()])
    }

    fn quantize_parameters(&mut self, _bits: u32) {}

    fn dot_products(&self, _input_shape: &[usize]) -> Result<Option<DotProductWorkload>> {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut flatten = Flatten::new();
        let x = Tensor::from_vec(vec![2, 2, 2], (0..8).map(|i| i as f32).collect()).unwrap();
        let y = flatten.forward(&x).unwrap();
        assert_eq!(y.shape(), &[8]);
        let dx = flatten.backward(&y).unwrap();
        assert_eq!(dx.shape(), &[2, 2, 2]);
        assert_eq!(dx.as_slice(), x.as_slice());
    }

    #[test]
    fn flatten_metadata() {
        let flatten = Flatten::new();
        assert_eq!(flatten.parameter_count(), 0);
        assert_eq!(flatten.output_shape(&[16, 5, 5]).unwrap(), vec![400]);
        assert!(flatten.dot_products(&[16, 5, 5]).unwrap().is_none());
        assert_eq!(flatten.kind(), LayerKind::Reshape);
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(vec![4])).is_err());
    }
}
