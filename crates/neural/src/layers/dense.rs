//! Fully connected (dense) layer.

use rand::Rng;

use crate::error::{NeuralError, Result};
use crate::tensor::Tensor;

use super::{fake_quantize_slice, DotProductWorkload, Layer, LayerKind};

/// A fully connected layer computing `y = W·x + b`.
///
/// FC layers are exactly the large-order vector multiplications of paper
/// Eqs. (5)–(6) that CrossLight maps onto its dedicated FC VDP units.
///
/// Forward and backward operate directly on the input slice (no clone /
/// reshape round-trips) and cache the input in a persistent workspace
/// tensor, so both passes are allocation-free in steady state.
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weights: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    /// Input of the last forward, copied into a reused buffer (`[in]`).
    cached_input: Tensor,
    has_cached_input: bool,
    /// `[in, out]` cache: the transposed weights, so the `y = W·x` reduction
    /// runs as a vectorizable SAXPY over the output lanes instead of a
    /// latency-bound scalar dot chain.  Rebuilt lazily whenever the weights
    /// change (`weights_t_stale`), i.e. once per optimizer step.
    weights_t: Tensor,
    weights_t_stale: bool,
}

impl Dense {
    /// Creates a dense layer with Xavier-style uniform initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidParameter`] if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NeuralError::InvalidParameter {
                name: "features",
                reason: format!(
                    "dense dimensions must be positive, got {in_features}x{out_features}"
                ),
            });
        }
        let limit = (6.0 / (in_features + out_features) as f32).sqrt();
        Ok(Self {
            in_features,
            out_features,
            weights: Tensor::random_uniform(vec![out_features, in_features], limit, rng),
            bias: Tensor::zeros(vec![out_features]),
            weight_grad: Tensor::zeros(vec![out_features, in_features]),
            bias_grad: Tensor::zeros(vec![out_features]),
            cached_input: Tensor::default(),
            has_cached_input: false,
            weights_t: Tensor::default(),
            weights_t_stale: true,
        })
    }

    /// Returns the input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Returns the output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Returns the weight matrix (`[out_features, in_features]`).
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }
}

impl Layer for Dense {
    fn name(&self) -> String {
        format!("dense_{}x{}", self.in_features, self.out_features)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::FullyConnected
    }

    fn forward_into(&mut self, input: &Tensor, output: &mut Tensor) -> Result<()> {
        if input.len() != self.in_features {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![self.in_features],
                actual: input.shape().to_vec(),
            });
        }
        // y = W·x + b, computed on the borrowed input slice directly — the
        // old clone().reshape(..) round-trip is gone.  The cached weight
        // transpose turns the reduction into a SAXPY over the output lanes
        // (i ascending, x[i] broadcast), which vectorizes; each output
        // element still accumulates over the input in ascending order,
        // matching the naive matmul chain bit-for-bit.
        if self.weights_t_stale {
            self.weights.transpose_into(&mut self.weights_t)?;
            self.weights_t_stale = false;
        }
        output.reset(&[self.out_features]);
        let x = input.as_slice();
        let wt = self.weights_t.as_slice();
        let y = output.as_mut_slice();
        for (i, &xv) in x.iter().enumerate() {
            let wt_row = &wt[i * self.out_features..(i + 1) * self.out_features];
            for (yo, &wv) in y.iter_mut().zip(wt_row) {
                *yo += wv * xv;
            }
        }
        for (yo, &b) in y.iter_mut().zip(self.bias.as_slice()) {
            *yo += b;
        }
        self.cached_input.copy_from(input);
        self.cached_input.reshape_in_place(&[self.in_features])?;
        self.has_cached_input = true;
        Ok(())
    }

    fn backward_into(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) -> Result<()> {
        if !self.has_cached_input {
            return Err(NeuralError::InvalidState {
                reason: "backward called before forward".into(),
            });
        }
        if grad_output.len() != self.out_features {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![self.out_features],
                actual: grad_output.shape().to_vec(),
            });
        }
        // dW += g ⊗ x, db += g, dx = Wᵀ g.
        let g = grad_output.as_slice();
        {
            let gw = self.weight_grad.as_mut_slice();
            let x = self.cached_input.as_slice();
            for (o, &go) in g.iter().enumerate() {
                let row = &mut gw[o * self.in_features..(o + 1) * self.in_features];
                for (w, &xv) in row.iter_mut().zip(x) {
                    *w += go * xv;
                }
            }
            let gb = self.bias_grad.as_mut_slice();
            for (gbo, &go) in gb.iter_mut().zip(g.iter()) {
                *gbo += go;
            }
        }
        // dx[i] = Σ_o W[o, i]·g[o], o ascending — the same chain as the old
        // explicit Wᵀ·g, without materializing the transpose.
        grad_input.reset(&[self.in_features]);
        let dx = grad_input.as_mut_slice();
        let w = self.weights.as_slice();
        for (o, &go) in g.iter().enumerate() {
            let w_row = &w[o * self.in_features..(o + 1) * self.in_features];
            for (d, &wv) in dx.iter_mut().zip(w_row) {
                *d += wv * go;
            }
        }
        Ok(())
    }

    fn apply_gradients(&mut self, learning_rate: f32) {
        for (w, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(self.weight_grad.as_slice())
        {
            *w -= learning_rate * g;
        }
        for (b, g) in self
            .bias
            .as_mut_slice()
            .iter_mut()
            .zip(self.bias_grad.as_slice())
        {
            *b -= learning_rate * g;
        }
        self.weights_t_stale = true;
        self.zero_gradients();
    }

    fn zero_gradients(&mut self) {
        self.weight_grad.as_mut_slice().fill(0.0);
        self.bias_grad.as_mut_slice().fill(0.0);
    }

    fn parameter_count(&self) -> usize {
        self.out_features * self.in_features + self.out_features
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        let len: usize = input_shape.iter().product();
        if len != self.in_features {
            return Err(NeuralError::ShapeMismatch {
                expected: vec![self.in_features],
                actual: input_shape.to_vec(),
            });
        }
        Ok(vec![self.out_features])
    }

    fn quantize_parameters(&mut self, bits: u32) {
        fake_quantize_slice(self.weights.as_mut_slice(), bits);
        fake_quantize_slice(self.bias.as_mut_slice(), bits);
        self.weights_t_stale = true;
    }

    fn dot_products(&self, _input_shape: &[usize]) -> Result<Option<DotProductWorkload>> {
        Ok(Some(DotProductWorkload {
            dot_length: self.in_features,
            dot_count: self.out_features,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut layer = Dense::new(2, 2, &mut rng()).unwrap();
        // Overwrite weights deterministically: W = [[1, 2], [3, 4]], b = [0.5, -0.5].
        layer.weights = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        layer.bias = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let y = layer
            .forward(&Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap())
            .unwrap();
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut layer = Dense::new(3, 2, &mut rng()).unwrap();
        let x = Tensor::from_vec(vec![3], vec![0.3, -0.7, 0.2]).unwrap();
        // Loss = sum(y); dL/dy = 1.
        let y = layer.forward(&x).unwrap();
        let grad = Tensor::full(vec![2], 1.0);
        let dx = layer.backward(&grad).unwrap();

        // Finite-difference check on the input gradient.
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut layer_copy = layer.clone();
            let yp = layer_copy.forward(&xp).unwrap().sum();
            let ym = layer_copy.forward(&xm).unwrap().sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[i]).abs() < 1e-2,
                "input grad {i}: analytic {} vs numeric {numeric}",
                dx.as_slice()[i]
            );
        }
        drop(y);
    }

    #[test]
    fn apply_gradients_reduces_loss() {
        let mut layer = Dense::new(4, 3, &mut rng()).unwrap();
        let x = Tensor::from_vec(vec![4], vec![1.0, -1.0, 0.5, 0.25]).unwrap();
        let loss = |layer: &mut Dense| {
            let y = layer.forward(&x).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let before = loss(&mut layer);
        // dL/dy = 2y.
        let y = layer.forward(&x).unwrap();
        let grad = y.scale(2.0);
        layer.backward(&grad).unwrap();
        layer.apply_gradients(0.05);
        let after = loss(&mut layer);
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }

    #[test]
    fn workload_and_shapes() {
        let layer = Dense::new(400, 120, &mut rng()).unwrap();
        assert_eq!(layer.parameter_count(), 400 * 120 + 120);
        assert_eq!(layer.output_shape(&[400]).unwrap(), vec![120]);
        assert_eq!(layer.output_shape(&[16, 5, 5]).unwrap(), vec![120]);
        assert!(layer.output_shape(&[10]).is_err());
        let w = layer.dot_products(&[400]).unwrap().unwrap();
        assert_eq!(w.dot_length, 400);
        assert_eq!(w.dot_count, 120);
        assert_eq!(w.macs(), 48_000);
        assert_eq!(layer.kind(), LayerKind::FullyConnected);
        assert!(layer.name().contains("400"));
    }

    #[test]
    fn invalid_construction_and_inputs() {
        assert!(Dense::new(0, 4, &mut rng()).is_err());
        let mut layer = Dense::new(3, 2, &mut rng()).unwrap();
        assert!(layer.forward(&Tensor::zeros(vec![4])).is_err());
        assert!(layer.backward(&Tensor::zeros(vec![2])).is_err());
        layer.forward(&Tensor::zeros(vec![3])).unwrap();
        assert!(layer.backward(&Tensor::zeros(vec![3])).is_err());
    }

    #[test]
    fn quantization_coarsens_weights() {
        let mut layer = Dense::new(16, 16, &mut rng()).unwrap();
        let original = layer.weights().as_slice().to_vec();
        layer.quantize_parameters(2);
        let mut distinct: Vec<i32> = layer
            .weights()
            .as_slice()
            .iter()
            .map(|v| (v * 1e4) as i32)
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 4);
        assert_ne!(original, layer.weights().as_slice());
    }
}
