//! # crosslight-neural
//!
//! Neural-network substrate for the CrossLight reproduction.
//!
//! The paper evaluates its accelerator on four DNN models (Table I) and runs a
//! quantization-resolution study on them (Fig. 5).  Since neither TensorFlow
//! nor the original datasets are available to this reproduction, this crate
//! provides everything needed from scratch:
//!
//! * [`tensor`] — a small dense `f32` tensor with matmul and im2col.
//! * [`layers`] — conv / dense / pooling / activation layers with forward and
//!   backward passes.
//! * [`model`] — a [`Sequential`](model::Sequential) container.
//! * [`train`] — mini-batch SGD with cross-entropy loss.
//! * [`quant`] — uniform symmetric fake-quantization of weights and
//!   activations (1–16 bits), mirroring the paper's QKeras study.
//! * [`datasets`] — synthetic class-cluster stand-ins for Sign-MNIST,
//!   CIFAR-10, STL-10 and Omniglot.
//! * [`zoo`] — the four Table I architectures, as structural
//!   [`ModelSpec`](zoo::ModelSpec)s (full size) and trainable surrogates.
//! * [`workload`] — extraction of the per-layer dot-product workload that the
//!   photonic accelerator executes.
//! * [`fingerprint`] — platform-stable FNV-1a hashing, used by the runtime
//!   layer to key its result cache and shard traffic.
//!
//! # Example
//!
//! ```
//! use crosslight_neural::workload::NetworkWorkload;
//! use crosslight_neural::zoo::PaperModel;
//!
//! # fn main() -> Result<(), crosslight_neural::error::NeuralError> {
//! let spec = PaperModel::Lenet5SignMnist.spec();
//! let workload = NetworkWorkload::from_spec(&spec)?;
//! assert_eq!(workload.conv_layers.len(), 2);
//! assert_eq!(workload.fc_layers.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod datasets;
pub mod error;
pub mod fingerprint;
pub mod layers;
pub mod metrics;
pub mod model;
pub mod quant;
pub mod tensor;
pub mod train;
pub mod workload;
pub mod zoo;

pub use error::NeuralError;
pub use model::Sequential;
pub use quant::QuantConfig;
pub use tensor::Tensor;
pub use workload::NetworkWorkload;
pub use zoo::{ModelSpec, PaperModel};
