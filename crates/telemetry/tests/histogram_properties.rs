//! Property tests of the log-linear histogram: structural invariants that
//! must hold for *any* sequence of recorded values — bucket occupancies
//! account for every sample, percentiles are monotone and bounded by the
//! observed extremes, merging two histograms equals recording their
//! concatenation, and empty snapshots are safe everywhere.

use proptest::prelude::*;

use crosslight_telemetry::{Histogram, HistogramSnapshot};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let histogram = Histogram::new();
    for &value in values {
        histogram.record(value);
    }
    histogram.snapshot()
}

proptest! {
    #[test]
    fn buckets_account_for_every_sample(
        values in proptest::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let snapshot = snapshot_of(&values);
        prop_assert_eq!(snapshot.count(), values.len() as u64);
        let bucket_total: u64 = snapshot.le_buckets().map(|(_, n)| n).sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
        let sum: u64 = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(snapshot.sum(), sum);
        prop_assert_eq!(snapshot.min(), values.iter().copied().min());
        prop_assert_eq!(snapshot.max(), values.iter().copied().max());
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in proptest::collection::vec(0u64..1_000_000_000_000, 1..200),
    ) {
        let snapshot = snapshot_of(&values);
        let quantiles: Vec<u64> = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&q| snapshot.quantile(q))
            .collect();
        for pair in quantiles.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles must be monotone: {quantiles:?}");
        }
        // Bucket estimates can overshoot a value by the bucket's relative
        // width but never past the recorded maximum, and never under the
        // recorded minimum.
        let min = snapshot.min().unwrap();
        let max = snapshot.max().unwrap();
        for &q in &quantiles {
            prop_assert!(q >= min, "quantile {q} below recorded min {min}");
            prop_assert!(q <= max, "quantile {q} above recorded max {max}");
        }
        prop_assert_eq!(snapshot.quantile(1.0), max);
    }

    #[test]
    fn merge_equals_concatenation(
        left in proptest::collection::vec(0u64..u64::MAX, 0..120),
        right in proptest::collection::vec(0u64..u64::MAX, 0..120),
    ) {
        let merged = snapshot_of(&left).merge(&snapshot_of(&right));
        let concatenated: Vec<u64> =
            left.iter().chain(right.iter()).copied().collect();
        prop_assert_eq!(merged, snapshot_of(&concatenated));
    }

    #[test]
    fn wire_round_trip_is_lossless(
        values in proptest::collection::vec(0u64..u64::MAX, 0..150),
    ) {
        let snapshot = snapshot_of(&values);
        let buckets: Vec<(u64, u64)> = snapshot.le_buckets().collect();
        let rebuilt = HistogramSnapshot::from_le_buckets(
            &buckets,
            snapshot.sum(),
            snapshot.min(),
            snapshot.max().unwrap_or(0),
        );
        prop_assert_eq!(rebuilt, snapshot);
    }
}

#[test]
fn empty_snapshots_are_safe_everywhere() {
    let empty = Histogram::new().snapshot();
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.sum(), 0);
    assert_eq!(empty.min(), None);
    assert_eq!(empty.max(), None);
    assert_eq!(empty.mean(), 0.0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(empty.quantile(q), 0);
    }
    assert_eq!(empty.le_buckets().count(), 0);
    // Merging with empty is the identity in both directions.
    let loaded = {
        let histogram = Histogram::new();
        histogram.record(42);
        histogram.record(7_000_000);
        histogram.snapshot()
    };
    assert_eq!(empty.merge(&loaded), loaded);
    assert_eq!(loaded.merge(&empty), loaded);
    assert_eq!(empty.merge(&HistogramSnapshot::empty()), empty);
}
