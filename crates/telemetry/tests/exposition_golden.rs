//! Golden-fixture test of the Prometheus-style text exposition: a fully
//! deterministic registry (fixed counter/gauge values, histogram samples
//! chosen to land in distinct log-linear buckets) is rendered and compared
//! byte-for-byte against the committed fixture, so any change to the
//! exposition format — ordering, escaping, bucket bounds, formatting — is
//! an explicit, reviewed diff.
//!
//! To regenerate after an intentional format change:
//!
//! ```sh
//! CROSSLIGHT_GOLDEN_BLESS=1 cargo test -p crosslight-telemetry --test exposition_golden
//! ```

use std::path::PathBuf;

use crosslight_telemetry::{render_text, validate_text, Registry};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/exposition.txt")
}

/// A registry exercising every metric kind, label shapes, escaping, and
/// the histogram's sub-16 / log-linear / saturating bucket regimes.
fn deterministic_registry() -> Registry {
    let registry = Registry::new();

    let requests = registry.counter("demo_requests_total", "Requests served.");
    requests.add(1234);

    let hits = registry.counter_with(
        "demo_cache_events_total",
        "Cache events by outcome.",
        &[("outcome", "hit")],
    );
    hits.add(900);
    let misses = registry.counter_with(
        "demo_cache_events_total",
        "Cache events by outcome.",
        &[("outcome", "miss")],
    );
    misses.add(100);

    let depth = registry.gauge("demo_queue_depth", "Jobs waiting in the queue.");
    depth.set(-3);

    let escaped = registry.gauge_with(
        "demo_annotated",
        "Help with a \\ backslash and\na newline.",
        &[("path", "a\"b\\c\nd")],
    );
    escaped.set(7);

    let latency = registry.histogram("demo_latency_ns", "Synthetic latency distribution.");
    // One sample per regime: exact sub-16 buckets, a few log-linear
    // octaves, and a very large value.
    for sample in [0, 1, 15, 16, 17, 100, 1_000, 65_536, 1_000_000, 1 << 40] {
        latency.record(sample);
    }

    registry
}

#[test]
fn exposition_text_matches_the_committed_fixture() {
    let rendered = render_text(&deterministic_registry().snapshot());
    // The fixture must itself be a valid exposition page.
    validate_text(&rendered).expect("rendered exposition validates");

    let path = fixture_path();
    if std::env::var_os("CROSSLIGHT_GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden fixture {path:?} ({err}); run with CROSSLIGHT_GOLDEN_BLESS=1 to \
             create it"
        )
    });
    assert_eq!(
        rendered, expected,
        "exposition text drifted from {path:?}; if intentional, regenerate with \
         CROSSLIGHT_GOLDEN_BLESS=1 and review the fixture diff"
    );
}
