//! Lock-free metric primitives: [`Counter`], [`Gauge`] and a log-linear
//! bucketed [`Histogram`].
//!
//! All three are cheap cloneable handles (`Arc` over atomic cores): cloning
//! shares the underlying series, so the same counter can live in a registry
//! *and* in the hot path that increments it.  Updates are single atomic RMW
//! operations — no locks, no allocation — which keeps the instrumented fast
//! paths within the ≤2% overhead budget the bench suite enforces.
//!
//! ## Memory ordering
//!
//! Increments publish with `Release` and reads observe with `Acquire`.  On
//! x86-64 this compiles to exactly the same code as `Relaxed` (`lock xadd`
//! is a full barrier; an `Acquire` load is a plain `mov`), so it is free on
//! the platforms this repo targets — but it gives snapshot readers a real
//! guarantee: if a snapshot observes effect *B* of a thread, it also
//! observes every counter update that thread made before *B*.  The runtime
//! and server stats paths exploit this by reading "downstream" counters
//! (completed, evals_ok) *before* "upstream" ones (submitted,
//! requests_total), which makes invariants like `submitted ≥ completed`
//! hold for live-traffic snapshots, not just quiescent ones.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter handle.
///
/// Clones share the same underlying atomic, so a counter can be registered
/// once and incremented from any number of threads.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Release);
    }

    /// Rolls back `n` previously added units.
    ///
    /// Counters are semantically monotone; this exists only for the
    /// submit-rollback paths (a request counted as submitted whose enqueue
    /// then failed was never really submitted).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.value.fetch_sub(n, Ordering::AcqRel);
    }

    /// Overwrites the counter value.
    ///
    /// Only for scrape-time mirrors of counters owned by a layer that does
    /// not link against this crate (e.g. the core `ModelCache` hit/miss
    /// totals, copied into the registry just before a snapshot).
    #[inline]
    pub fn store(&self, value: u64) {
        self.value.store(value, Ordering::Release);
    }

    /// Current value (`Acquire`; see the module docs on snapshot ordering).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A signed gauge handle for instantaneous values (queue depths, entry
/// counts, in-flight requests).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the gauge.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Release);
    }

    /// Subtracts `n` from the gauge.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Release);
    }

    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Release);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Acquire)
    }
}

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of two,
/// bounding the relative quantile error at 1/16 = 6.25%.
const SUB_BITS: u32 = 4;
const SUBS: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range: the top index is
/// reached by `u64::MAX` at `(63 - 4) * 16 + 31 = 975`, so 976 buckets.
pub(crate) const NUM_BUCKETS: usize = ((64 - SUB_BITS + 1) as usize) * (SUBS as usize);

/// Maps a recorded value to its bucket index.
///
/// Values below 16 get exact singleton buckets; larger values index by
/// `(octave - 4) * 16 + top-4-mantissa-bits`, the classic log-linear (HDR)
/// layout.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        value as usize
    } else {
        let octave = 63 - value.leading_zeros();
        let shift = octave - SUB_BITS;
        ((shift as usize) << SUB_BITS) + (value >> shift) as usize
    }
}

/// Inclusive `[lower, upper]` value range of a bucket.
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUBS as usize {
        (index as u64, index as u64)
    } else {
        let shift = (index >> SUB_BITS) as u32 - 1;
        let mantissa = (index - ((shift as usize) << SUB_BITS)) as u64;
        let lower = mantissa << shift;
        (lower, lower + ((1u64 << shift) - 1))
    }
}

/// A lock-free log-linear histogram handle.
///
/// Recording is three relaxed atomic RMWs (bucket, sum, min/max are two
/// conditional RMWs that almost always no-op after warm-up); snapshotting
/// walks the bucket array without stopping writers.  Relative quantile
/// error is bounded by the 6.25% bucket width.  Clones share the same
/// cells, which is how per-worker recording into one series works.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            core: Arc::new(HistogramCore {
                buckets: buckets.into_boxed_slice(),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let core = &*self.core;
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot.
    ///
    /// The reported `count` is the sum of the bucket counts read during the
    /// walk, so "bucket counts sum to the sample count" holds by
    /// construction even while writers are racing; `sum`/`min`/`max` may
    /// then lag the buckets by in-flight observations.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.core;
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (index, cell) in core.buckets.iter().enumerate() {
            let n = cell.load(Ordering::Acquire);
            if n > 0 {
                count += n;
                buckets.push((index, n));
            }
        }
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Acquire),
            min: core.min.load(Ordering::Acquire),
            max: core.max.load(Ordering::Acquire),
            buckets,
        }
    }
}

/// Plain-data result of [`Histogram::snapshot`]: bucket occupancies plus
/// sum/min/max, with quantile and merge queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    /// `u64::MAX` when empty.
    min: u64,
    max: u64,
    /// `(bucket index, occupancy)` pairs, ascending by index, zero-count
    /// buckets omitted.
    buckets: Vec<(usize, u64)>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// The snapshot of a histogram with no observations.
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the recorded values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the bucket holding the `⌈q·count⌉`-th smallest observation (so the
    /// true quantile is overestimated by at most the 6.25% bucket width).
    /// Returns `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Combines two snapshots as if every observation had been recorded
    /// into a single histogram.
    pub fn merge(&self, other: &Self) -> Self {
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        Self {
            count: self.count + other.count,
            // The live accumulator is a wrapping atomic add, so merging
            // wraps the same way instead of panicking in debug builds.
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets: merged,
        }
    }

    /// Occupied buckets as `(inclusive upper bound, occupancy)` pairs,
    /// ascending — the wire/exposition form of the distribution.
    pub fn le_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|&(index, n)| (bucket_bounds(index).1, n))
    }

    /// Rebuilds a snapshot from its wire form: `(upper bound, occupancy)`
    /// pairs as produced by [`Self::le_buckets`] plus the `sum`/`min`/`max`
    /// scalars.  Pairs may arrive in any order; duplicates accumulate.
    pub fn from_le_buckets(pairs: &[(u64, u64)], sum: u64, min: Option<u64>, max: u64) -> Self {
        let mut by_index: Vec<(usize, u64)> = Vec::with_capacity(pairs.len());
        for &(le, n) in pairs {
            if n == 0 {
                continue;
            }
            let index = bucket_index(le);
            match by_index.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(pos) => by_index[pos].1 += n,
                Err(pos) => by_index.insert(pos, (index, n)),
            }
        }
        let count = by_index.iter().map(|&(_, n)| n).sum();
        Self {
            count,
            sum,
            min: min.unwrap_or(u64::MAX),
            max,
            buckets: by_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        for value in (0..2048u64).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let index = bucket_index(value);
            let (lower, upper) = bucket_bounds(index);
            assert!(
                lower <= value && value <= upper,
                "value {value} outside bucket {index} bounds [{lower}, {upper}]"
            );
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for value in [100u64, 1_000, 65_536, 1 << 30, 1 << 50] {
            let (lower, upper) = bucket_bounds(bucket_index(value));
            let width = (upper - lower) as f64;
            assert!(
                width / lower as f64 <= 1.0 / 15.0,
                "bucket too wide at {value}"
            );
        }
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let counter = Counter::new();
        counter.inc();
        counter.add(9);
        assert_eq!(counter.get(), 10);
        counter.sub(3);
        assert_eq!(counter.get(), 7);
        counter.store(42);
        assert_eq!(counter.get(), 42);

        let gauge = Gauge::new();
        gauge.add(5);
        gauge.sub(8);
        assert_eq!(gauge.get(), -3);
        gauge.set(12);
        assert_eq!(gauge.get(), 12);
    }

    #[test]
    fn clones_share_the_same_cell() {
        let counter = Counter::new();
        let clone = counter.clone();
        clone.add(3);
        counter.add(4);
        assert_eq!(counter.get(), 7);
        assert_eq!(clone.get(), 7);
    }

    #[test]
    fn histogram_snapshot_reports_exact_small_values() {
        let histogram = Histogram::new();
        for value in [3u64, 3, 3, 7] {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 4);
        assert_eq!(snapshot.sum(), 16);
        assert_eq!(snapshot.min(), Some(3));
        assert_eq!(snapshot.max(), Some(7));
        assert_eq!(snapshot.p50(), 3);
        assert_eq!(snapshot.quantile(1.0), 7);
        assert!((snapshot.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_inert() {
        let snapshot = Histogram::new().snapshot();
        assert_eq!(snapshot, HistogramSnapshot::empty());
        assert_eq!(snapshot.count(), 0);
        assert_eq!(snapshot.min(), None);
        assert_eq!(snapshot.max(), None);
        assert_eq!(snapshot.mean(), 0.0);
        assert_eq!(snapshot.p50(), 0);
        assert_eq!(snapshot.p999(), 0);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let histogram = Histogram::new();
        for value in 1..=10_000u64 {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        for (q, exact) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let estimate = snapshot.quantile(q) as f64;
            assert!(
                estimate >= exact && estimate <= exact * 1.07,
                "q={q}: estimate {estimate} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let (left, right, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for value in [1u64, 50, 50, 7_000] {
            left.record(value);
            both.record(value);
        }
        for value in [2u64, 50, 1 << 33] {
            right.record(value);
            both.record(value);
        }
        assert_eq!(left.snapshot().merge(&right.snapshot()), both.snapshot());
        // Merging with an empty snapshot is the identity.
        assert_eq!(
            left.snapshot().merge(&HistogramSnapshot::empty()),
            left.snapshot()
        );
    }

    #[test]
    fn wire_roundtrip_preserves_the_snapshot() {
        let histogram = Histogram::new();
        for value in [0u64, 1, 15, 16, 1_000, 123_456_789] {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        let pairs: Vec<(u64, u64)> = snapshot.le_buckets().collect();
        let rebuilt = HistogramSnapshot::from_le_buckets(
            &pairs,
            snapshot.sum(),
            snapshot.min(),
            snapshot.max().unwrap_or(0),
        );
        assert_eq!(rebuilt, snapshot);

        let empty = HistogramSnapshot::empty();
        assert_eq!(HistogramSnapshot::from_le_buckets(&[], 0, None, 0), empty);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let histogram = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let handle = histogram.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        handle.record(t * 10_000 + i);
                    }
                });
            }
        });
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 40_000);
        assert_eq!(snapshot.min(), Some(0));
    }
}
