//! Prometheus-style text exposition of a [`RegistrySnapshot`], plus a
//! structural validator used by the CI scrape check.
//!
//! The rendering follows the text format conventions: a `# HELP` and
//! `# TYPE` line per family, then one sample line per series.  Histograms
//! render as cumulative `_bucket{le="…"}` series (occupied buckets only,
//! plus the mandatory `le="+Inf"`), `_sum` and `_count`.  Ordering is fully
//! determined by the snapshot (families by name, series by label set), so
//! the same state always renders to the same bytes — the property the
//! golden fixture locks.

use std::fmt::Write as _;

use crate::registry::{MetricKind, RegistrySnapshot, SeriesValue};

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders the label block `{k="v",…}`, with `extra` appended last (used
/// for the histogram `le` label).  Empty when there are no labels.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn render_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
        for series in &family.series {
            match &series.value {
                SeriesValue::Counter(value) => {
                    let _ = writeln!(
                        out,
                        "{}{} {value}",
                        family.name,
                        label_block(&series.labels, None)
                    );
                }
                SeriesValue::Gauge(value) => {
                    let _ = writeln!(
                        out,
                        "{}{} {value}",
                        family.name,
                        label_block(&series.labels, None)
                    );
                }
                SeriesValue::Histogram(histogram) => {
                    let mut cumulative = 0u64;
                    for (le, count) in histogram.le_buckets() {
                        cumulative += count;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            family.name,
                            label_block(&series.labels, Some(("le", &le.to_string())))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        family.name,
                        label_block(&series.labels, Some(("le", "+Inf"))),
                        histogram.count()
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        family.name,
                        label_block(&series.labels, None),
                        histogram.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        family.name,
                        label_block(&series.labels, None),
                        histogram.count()
                    );
                }
            }
        }
    }
    out
}

fn valid_exposed_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Structurally validates a rendered exposition page: every `# TYPE` name
/// is well-formed and unique, and every sample line belongs to a declared
/// family (directly, or via the `_bucket`/`_sum`/`_count` suffix of a
/// declared histogram).  Returns the first problem found.
pub fn validate_text(text: &str) -> Result<(), String> {
    let mut types: Vec<(String, MetricKind)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = match (parts.next(), parts.next()) {
                (Some(name), Some(kind)) => (name, kind),
                _ => return Err(format!("malformed TYPE line: `{line}`")),
            };
            if !valid_exposed_name(name) {
                return Err(format!("invalid metric name `{name}` in TYPE line"));
            }
            let kind = MetricKind::from_wire_name(kind)
                .ok_or_else(|| format!("unknown kind in TYPE line: `{line}`"))?;
            if types.iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate metric family `{name}`"));
            }
            types.push((name.to_string(), kind));
        }
    }
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("malformed sample line: `{line}`"))?;
        let name = &line[..name_end];
        if !valid_exposed_name(name) {
            return Err(format!("invalid metric name `{name}` in sample line"));
        }
        let declared = types.iter().any(|(n, _)| n == name)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                name.strip_suffix(suffix).is_some_and(|base| {
                    types
                        .iter()
                        .any(|(n, k)| n == base && *k == MetricKind::Histogram)
                })
            });
        if !declared {
            return Err(format!("sample for unregistered metric `{name}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn demo_snapshot() -> RegistrySnapshot {
        let registry = Registry::new();
        registry
            .counter("expose_requests_total", "Requests.")
            .add(7);
        registry
            .gauge_with("expose_depth", "Depth.", &[("worker", "0")])
            .set(-3);
        let histogram = registry.histogram("expose_latency_ns", "Latency.");
        histogram.record(5);
        histogram.record(5);
        histogram.record(1_000);
        registry.snapshot()
    }

    #[test]
    fn render_is_deterministic_and_valid() {
        let snapshot = demo_snapshot();
        let first = render_text(&snapshot);
        let second = render_text(&snapshot);
        assert_eq!(first, second);
        validate_text(&first).expect("rendered page validates");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = render_text(&demo_snapshot());
        assert!(text.contains("expose_latency_ns_bucket{le=\"5\"} 2"));
        assert!(text.contains("expose_latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("expose_latency_ns_sum 1010"));
        assert!(text.contains("expose_latency_ns_count 3"));
    }

    #[test]
    fn labels_and_help_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with(
                "escaped_total",
                "Line one\nline \\two.",
                &[("path", "a\"b\\c")],
            )
            .inc();
        let text = render_text(&registry.snapshot());
        assert!(text.contains("# HELP escaped_total Line one\\nline \\\\two."));
        assert!(text.contains("escaped_total{path=\"a\\\"b\\\\c\"} 1"));
        validate_text(&text).expect("escaped page validates");
    }

    #[test]
    fn validator_rejects_unregistered_and_duplicate_names() {
        assert!(validate_text("orphan_total 3\n")
            .unwrap_err()
            .contains("unregistered"));
        let dup = "# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n";
        assert!(validate_text(dup).unwrap_err().contains("duplicate"));
        // _sum only counts as declared for histogram families.
        let bad_suffix = "# TYPE x_total counter\nx_total_sum 1\n";
        assert!(validate_text(bad_suffix)
            .unwrap_err()
            .contains("unregistered"));
        let ok = "# TYPE h_ns histogram\nh_ns_bucket{le=\"+Inf\"} 0\nh_ns_sum 0\nh_ns_count 0\n";
        validate_text(ok).expect("histogram suffixes validate");
    }
}
