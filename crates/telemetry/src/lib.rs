//! # crosslight-telemetry
//!
//! Std-only observability substrate for the CrossLight serving stack: the
//! measurement layer underneath `crosslight-runtime`'s worker pool and
//! `crosslight-server`'s TCP front-end.
//!
//! Three pieces, layered:
//!
//! 1. **Primitives** ([`metrics`]) — [`Counter`], [`Gauge`] and a log-linear
//!    bucketed [`Histogram`], all cheap cloneable handles over shared atomic
//!    cores.  Hot paths pay a single atomic RMW per update; no locks, no
//!    allocation.  Histogram snapshots are order-independent and mergeable,
//!    so per-worker shards can be combined at scrape time.
//! 2. **Registry** ([`registry`]) — a [`Registry`] maps stable
//!    Prometheus-style family names (plus optional labels) to metric
//!    handles.  Registration is startup-time and lock-guarded; the handles
//!    handed back are the same lock-free primitives, so instrumented code
//!    never touches the registry lock.  [`Registry::snapshot`] produces a
//!    plain-data [`RegistrySnapshot`] with deterministic ordering, and
//!    snapshots from independent registries (runtime + server) merge into
//!    one scrape.
//! 3. **Exposition & tracing** ([`expose`], [`trace`]) — [`render_text`]
//!    renders a snapshot in the Prometheus text format (`# HELP`/`# TYPE`,
//!    cumulative `_bucket`/`_sum`/`_count` series), [`validate_text`] checks
//!    a rendered page for unregistered or duplicated names, and
//!    [`RequestTrace`]/[`TraceSampler`]/[`SpanRing`] implement sampled
//!    per-request phase timelines exported as JSON lines through a bounded
//!    in-memory ring.
//!
//! The crate is dependency-free (std only) in keeping with the repository's
//! offline-compat policy, and is consumed by the runtime, server, bench and
//! example layers.
//!
//! # Example
//!
//! ```
//! use crosslight_telemetry::{render_text, Registry};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("demo_requests_total", "Requests served.");
//! let latency = registry.histogram("demo_latency_ns", "Request latency.");
//!
//! requests.inc();
//! latency.record(1_250);
//!
//! let page = render_text(&registry.snapshot());
//! assert!(page.contains("# TYPE demo_requests_total counter"));
//! assert!(page.contains("demo_requests_total 1"));
//! ```

#![warn(missing_docs)]

pub mod expose;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use expose::{render_text, validate_text};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{
    FamilySnapshot, MetricKind, Registry, RegistryError, RegistrySnapshot, SeriesSnapshot,
    SeriesValue,
};
pub use trace::{Phase, RequestTrace, Span, SpanRing, TraceSampler};

/// Convenience re-exports for `use crosslight_telemetry::prelude::*`.
pub mod prelude {
    pub use crate::expose::{render_text, validate_text};
    pub use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
    pub use crate::registry::{MetricKind, Registry, RegistrySnapshot, SeriesValue};
    pub use crate::trace::{Phase, RequestTrace, SpanRing, TraceSampler};
}
