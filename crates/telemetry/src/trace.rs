//! Sampled per-request phase tracing.
//!
//! A [`RequestTrace`] is a small owned timeline: the request's id, a
//! monotonic origin instant, and one [`Span`] per lifecycle phase recorded
//! as nanosecond offsets from the origin.  The trace travels *with* the
//! request — reader thread → runtime queue → worker → responder → writer —
//! so recording never synchronizes between threads; only the finished trace
//! is folded into shared histograms and the export ring by whichever thread
//! finishes it.
//!
//! [`TraceSampler`] decides cheaply (one relaxed `fetch_add`) which
//! requests carry a trace; unsampled requests pay nothing else — not even a
//! clock read.  Finished traces export as single-line JSON into a bounded
//! [`SpanRing`], drained by the `metrics` wire op's `spans` format.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The request lifecycle phases, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for + reading the request frame off the socket.
    Read,
    /// Wire decode and architecture/workload resolution.
    Decode,
    /// Admission-control acquisition.
    Admission,
    /// Waiting in a worker's submission queue.
    Queue,
    /// Result-cache probe (hit or miss).
    CacheLookup,
    /// Analytical-model preparation on a cache miss.
    Prepare,
    /// Simulator evaluation on a cache miss.
    Evaluate,
    /// Response encoding.
    Serialize,
    /// Waiting in the connection's write queue.
    WriteQueue,
    /// Socket write + flush.
    Write,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 10] = [
        Phase::Read,
        Phase::Decode,
        Phase::Admission,
        Phase::Queue,
        Phase::CacheLookup,
        Phase::Prepare,
        Phase::Evaluate,
        Phase::Serialize,
        Phase::WriteQueue,
        Phase::Write,
    ];

    /// Stable wire/label name.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Read => "read",
            Phase::Decode => "decode",
            Phase::Admission => "admission",
            Phase::Queue => "queue",
            Phase::CacheLookup => "cache_lookup",
            Phase::Prepare => "prepare",
            Phase::Evaluate => "evaluate",
            Phase::Serialize => "serialize",
            Phase::WriteQueue => "write_queue",
            Phase::Write => "write",
        }
    }

    /// Position in [`Phase::ALL`] (stable array index for per-phase state).
    pub fn index(self) -> usize {
        match self {
            Phase::Read => 0,
            Phase::Decode => 1,
            Phase::Admission => 2,
            Phase::Queue => 3,
            Phase::CacheLookup => 4,
            Phase::Prepare => 5,
            Phase::Evaluate => 6,
            Phase::Serialize => 7,
            Phase::WriteQueue => 8,
            Phase::Write => 9,
        }
    }
}

/// One recorded phase interval, as nanosecond offsets from the trace
/// origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which lifecycle phase.
    pub phase: Phase,
    /// Offset of the phase start from the trace origin.
    pub start_ns: u64,
    /// Offset of the phase end from the trace origin.
    pub end_ns: u64,
}

impl Span {
    /// Phase duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// An owned per-request phase timeline.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    id: u64,
    origin: Instant,
    spans: Vec<Span>,
}

impl RequestTrace {
    /// Starts a trace for request `id` with the origin at `origin` (the
    /// earliest instant the trace will reference, typically read start).
    pub fn with_origin(id: u64, origin: Instant) -> Self {
        Self {
            id,
            origin,
            spans: Vec::with_capacity(Phase::ALL.len()),
        }
    }

    /// Starts a trace for request `id` with the origin at "now".
    pub fn new(id: u64) -> Self {
        Self::with_origin(id, Instant::now())
    }

    /// The traced request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    fn offset_ns(&self, instant: Instant) -> u64 {
        instant.saturating_duration_since(self.origin).as_nanos() as u64
    }

    /// Records a phase interval `[start, end]`.
    pub fn record(&mut self, phase: Phase, start: Instant, end: Instant) {
        let span = Span {
            phase,
            start_ns: self.offset_ns(start),
            end_ns: self.offset_ns(end),
        };
        self.spans.push(span);
    }

    /// Records a phase that started at `start` and ends "now".
    pub fn record_since(&mut self, phase: Phase, start: Instant) {
        self.record(phase, start, Instant::now());
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total recorded duration of `phase`, or `None` if never recorded.
    pub fn phase_ns(&self, phase: Phase) -> Option<u64> {
        let mut total = None;
        for span in &self.spans {
            if span.phase == phase {
                *total.get_or_insert(0) += span.duration_ns();
            }
        }
        total
    }

    /// Start offset of the first span of `phase`.
    pub fn first_start_ns(&self, phase: Phase) -> Option<u64> {
        self.spans
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.start_ns)
            .min()
    }

    /// End offset of the last-ending span.
    pub fn latest_end_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0)
    }

    /// Renders the trace as one JSON line for the span export ring.
    pub fn to_json_line(&self) -> String {
        let mut out = format!("{{\"id\":{},\"spans\":[", self.id);
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                span.phase.as_str(),
                span.start_ns,
                span.duration_ns()
            );
        }
        out.push_str("]}");
        out
    }
}

/// Decides which requests carry a trace: every `every`-th one, `0` = none.
///
/// The decision is one relaxed `fetch_add` plus a branch — cheap enough to
/// sit on the per-request hot path even when sampling is off.
#[derive(Debug)]
pub struct TraceSampler {
    every: u64,
    counter: AtomicU64,
}

impl TraceSampler {
    /// Creates a sampler tracing every `every`-th request (`0` disables,
    /// `1` traces everything).
    pub fn new(every: u64) -> Self {
        Self {
            every,
            counter: AtomicU64::new(0),
        }
    }

    /// The configured period.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Should this request be traced?
    #[inline]
    pub fn sample(&self) -> bool {
        match self.every {
            0 => false,
            1 => true,
            every => self
                .counter
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(every),
        }
    }
}

/// Default capacity of the span export ring.
pub const SPAN_RING_CAPACITY: usize = 1024;

/// A bounded drop-oldest ring of exported trace lines.
#[derive(Debug)]
pub struct SpanRing {
    capacity: usize,
    lines: Mutex<std::collections::VecDeque<String>>,
    dropped: AtomicU64,
}

impl Default for SpanRing {
    fn default() -> Self {
        Self::new(SPAN_RING_CAPACITY)
    }
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` lines (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            lines: Mutex::new(std::collections::VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends a line, evicting the oldest when full.
    pub fn push(&self, line: String) {
        let mut lines = self.lines.lock().expect("span ring lock poisoned");
        if lines.len() == self.capacity {
            lines.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        lines.push_back(line);
    }

    /// Removes and returns all buffered lines, oldest first.
    pub fn drain(&self) -> Vec<String> {
        let mut lines = self.lines.lock().expect("span ring lock poisoned");
        lines.drain(..).collect()
    }

    /// Number of buffered lines.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("span ring lock poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_records_offsets_from_origin() {
        let origin = Instant::now();
        let mut trace = RequestTrace::with_origin(7, origin);
        let start = origin + Duration::from_nanos(100);
        let end = origin + Duration::from_nanos(350);
        trace.record(Phase::Queue, start, end);
        trace.record(Phase::Evaluate, end, origin + Duration::from_nanos(1_350));
        assert_eq!(trace.id(), 7);
        assert_eq!(trace.phase_ns(Phase::Queue), Some(250));
        assert_eq!(trace.phase_ns(Phase::Evaluate), Some(1_000));
        assert_eq!(trace.phase_ns(Phase::Write), None);
        assert_eq!(trace.first_start_ns(Phase::Queue), Some(100));
        assert_eq!(trace.latest_end_ns(), 1_350);
    }

    #[test]
    fn instants_before_the_origin_saturate_to_zero() {
        let origin = Instant::now();
        let mut trace = RequestTrace::with_origin(1, origin + Duration::from_secs(1));
        trace.record(Phase::Read, origin, origin);
        assert_eq!(trace.spans()[0].start_ns, 0);
        assert_eq!(trace.spans()[0].duration_ns(), 0);
    }

    #[test]
    fn json_line_is_stable() {
        let origin = Instant::now();
        let mut trace = RequestTrace::with_origin(42, origin);
        trace.record(
            Phase::CacheLookup,
            origin + Duration::from_nanos(10),
            origin + Duration::from_nanos(25),
        );
        assert_eq!(
            trace.to_json_line(),
            "{\"id\":42,\"spans\":[{\"phase\":\"cache_lookup\",\"start_ns\":10,\"dur_ns\":15}]}"
        );
    }

    #[test]
    fn phase_index_matches_all_order() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
    }

    #[test]
    fn sampler_period_is_respected() {
        assert!(!TraceSampler::new(0).sample());
        let always = TraceSampler::new(1);
        assert!(always.sample() && always.sample());
        let every4 = TraceSampler::new(4);
        let hits = (0..16).filter(|_| every4.sample()).count();
        assert_eq!(hits, 4);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let ring = SpanRing::new(2);
        ring.push("a".into());
        ring.push("b".into());
        ring.push("c".into());
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.drain(), vec!["b".to_string(), "c".to_string()]);
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 2);
    }
}
