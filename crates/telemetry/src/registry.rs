//! The metric registry: stable names + labels → lock-free handles, and
//! deterministic plain-data snapshots.
//!
//! Registration happens at service construction time under a mutex; the
//! handles handed back are the same lock-free primitives from
//! [`crate::metrics`], so the instrumented hot paths never touch the
//! registry lock again.  Existing detached handles can also be *adopted*
//! (e.g. the result-cache hit/miss counters owned by `ShardedCache`), which
//! is how layers that predate the registry surface their counters without
//! changing ownership.
//!
//! Snapshots sort families by name and series by label set, so two
//! snapshots of the same state render identically — the property the
//! golden exposition fixture locks.

use std::fmt;
use std::sync::Mutex;

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// The three metric kinds of the exposition format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Log-linear bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The exposition-format kind name (`counter`/`gauge`/`histogram`).
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    /// Parses an exposition-format kind name.
    pub fn from_wire_name(name: &str) -> Option<Self> {
        match name {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// Why a registration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Family or label name violates the `[a-zA-Z_][a-zA-Z0-9_]*` charset.
    InvalidName(String),
    /// The exact (family, label set) series is already registered.
    DuplicateSeries(String),
    /// The family exists with a different kind or help text.
    KindMismatch(String),
    /// Two snapshots being merged both contain the family.
    DuplicateFamily(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidName(name) => write!(f, "invalid metric name `{name}`"),
            RegistryError::DuplicateSeries(name) => {
                write!(f, "duplicate metric series `{name}`")
            }
            RegistryError::KindMismatch(name) => {
                write!(
                    f,
                    "metric family `{name}` re-registered with a different kind/help"
                )
            }
            RegistryError::DuplicateFamily(name) => {
                write!(
                    f,
                    "metric family `{name}` present in more than one merged snapshot"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One registered handle (the registry keeps a clone; the caller keeps the
/// hot-path clone).
#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }

    fn read(&self) -> SeriesValue {
        match self {
            Handle::Counter(counter) => SeriesValue::Counter(counter.get()),
            Handle::Gauge(gauge) => SeriesValue::Gauge(gauge.get()),
            Handle::Histogram(histogram) => SeriesValue::Histogram(histogram.snapshot()),
        }
    }
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<(Vec<(String, String)>, Handle)>,
}

/// A set of named metric families.
///
/// The registry itself is only touched at registration and snapshot time;
/// all recording goes through the returned handles.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn series_display(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{name}{{{}}}", pairs.join(","))
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        handle: Handle,
    ) -> Result<(), RegistryError> {
        if !valid_name(name) {
            return Err(RegistryError::InvalidName(name.to_string()));
        }
        for (key, _) in labels {
            if !valid_name(key) {
                return Err(RegistryError::InvalidName(format!("{name}{{{key}}}")));
            }
        }
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("registry lock poisoned");
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            if family.kind != handle.kind() || family.help != help {
                return Err(RegistryError::KindMismatch(name.to_string()));
            }
            if family.series.iter().any(|(l, _)| *l == owned) {
                return Err(RegistryError::DuplicateSeries(series_display(name, labels)));
            }
            family.series.push((owned, handle));
        } else {
            families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind: handle.kind(),
                series: vec![(owned, handle)],
            });
        }
        Ok(())
    }

    /// Adopts an existing counter under `name` with no labels.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: &Counter,
    ) -> Result<(), RegistryError> {
        self.register(name, help, labels, Handle::Counter(counter.clone()))
    }

    /// Adopts an existing gauge under `name`.
    pub fn register_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        gauge: &Gauge,
    ) -> Result<(), RegistryError> {
        self.register(name, help, labels, Handle::Gauge(gauge.clone()))
    }

    /// Adopts an existing histogram under `name`.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: &Histogram,
    ) -> Result<(), RegistryError> {
        self.register(name, help, labels, Handle::Histogram(histogram.clone()))
    }

    /// Creates and registers an unlabeled counter.
    ///
    /// # Panics
    /// On invalid or duplicate names — registration happens at service
    /// construction with compile-time-constant names, so failures are bugs.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Creates and registers a labeled counter series.
    ///
    /// # Panics
    /// See [`Self::counter`].
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let counter = Counter::new();
        self.register_counter(name, help, labels, &counter)
            .expect("static metric registration is infallible");
        counter
    }

    /// Creates and registers an unlabeled gauge.
    ///
    /// # Panics
    /// See [`Self::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Creates and registers a labeled gauge series.
    ///
    /// # Panics
    /// See [`Self::counter`].
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let gauge = Gauge::new();
        self.register_gauge(name, help, labels, &gauge)
            .expect("static metric registration is infallible");
        gauge
    }

    /// Creates and registers an unlabeled histogram.
    ///
    /// # Panics
    /// See [`Self::counter`].
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Creates and registers a labeled histogram series.
    ///
    /// # Panics
    /// See [`Self::counter`].
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let histogram = Histogram::new();
        self.register_histogram(name, help, labels, &histogram)
            .expect("static metric registration is infallible");
        histogram
    }

    /// Reads every registered series into a deterministic plain-data
    /// snapshot (families sorted by name, series by label set).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().expect("registry lock poisoned");
        let mut out: Vec<FamilySnapshot> = families
            .iter()
            .map(|family| {
                let mut series: Vec<SeriesSnapshot> = family
                    .series
                    .iter()
                    .map(|(labels, handle)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: handle.read(),
                    })
                    .collect();
                series.sort_by(|a, b| a.labels.cmp(&b.labels));
                FamilySnapshot {
                    name: family.name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    series,
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        RegistrySnapshot { families: out }
    }
}

/// The value of one series at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram distribution.
    Histogram(HistogramSnapshot),
}

/// One `(labels, value)` pair of a family.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Label key/value pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SeriesValue,
}

/// One metric family: name, help, kind and all label series.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Family name (e.g. `runtime_queue_wait_ns`).
    pub name: String,
    /// Help text for the `# HELP` line.
    pub help: String,
    /// Kind for the `# TYPE` line.
    pub kind: MetricKind,
    /// Series, sorted by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// A deterministic point-in-time view of a whole registry (or several
/// merged ones).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl RegistrySnapshot {
    /// Looks up a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// The value of the unlabeled (or single) series of `name`, if present.
    pub fn value(&self, name: &str) -> Option<&SeriesValue> {
        self.family(name)
            .and_then(|f| f.series.first())
            .map(|s| &s.value)
    }

    /// Merges snapshots from independent registries (e.g. the server's and
    /// the runtime's) into one scrape.  Family names must be disjoint —
    /// the `server_`/`runtime_` prefixes guarantee this in practice.
    pub fn merged(parts: Vec<RegistrySnapshot>) -> Result<RegistrySnapshot, RegistryError> {
        let mut families: Vec<FamilySnapshot> = Vec::new();
        for part in parts {
            for family in part.families {
                if families.iter().any(|f| f.name == family.name) {
                    return Err(RegistryError::DuplicateFamily(family.name));
                }
                families.push(family);
            }
        }
        families.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(RegistrySnapshot { families })
    }

    /// Sums snapshots of the *same* metric surface (e.g. one scrape per
    /// cluster backend) into one: counters and gauges add, histograms
    /// merge, matched by `(family, label set)`.  Series present in only
    /// some parts pass through; a family whose kind disagrees across
    /// parts keeps its first reading (malformed peers must not poison a
    /// scrape).  Complements [`Self::merged`], which requires disjoint
    /// family names.
    #[must_use]
    pub fn aggregated(parts: Vec<RegistrySnapshot>) -> RegistrySnapshot {
        fn combine(current: &SeriesValue, incoming: &SeriesValue) -> SeriesValue {
            match (current, incoming) {
                (SeriesValue::Counter(a), SeriesValue::Counter(b)) => {
                    SeriesValue::Counter(a.saturating_add(*b))
                }
                (SeriesValue::Gauge(a), SeriesValue::Gauge(b)) => {
                    SeriesValue::Gauge(a.saturating_add(*b))
                }
                (SeriesValue::Histogram(a), SeriesValue::Histogram(b)) => {
                    SeriesValue::Histogram(a.merge(b))
                }
                (mismatched, _) => mismatched.clone(),
            }
        }
        let mut families: Vec<FamilySnapshot> = Vec::new();
        for part in parts {
            for family in part.families {
                match families.iter_mut().find(|f| f.name == family.name) {
                    None => families.push(family),
                    Some(existing) if existing.kind == family.kind => {
                        for series in family.series {
                            match existing
                                .series
                                .iter_mut()
                                .find(|s| s.labels == series.labels)
                            {
                                None => existing.series.push(series),
                                Some(slot) => slot.value = combine(&slot.value, &series.value),
                            }
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        for family in &mut families {
            family.series.sort_by(|a, b| a.labels.cmp(&b.labels));
        }
        families.sort_by(|a, b| a.name.cmp(&b.name));
        RegistrySnapshot { families }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_orders_families_and_series() {
        let registry = Registry::new();
        registry.counter("zeta_total", "Last alphabetically.");
        registry.counter_with("alpha_total", "First.", &[("worker", "1")]);
        registry.counter_with("alpha_total", "First.", &[("worker", "0")]);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha_total", "zeta_total"]);
        let labels: Vec<&str> = snapshot.families[0]
            .series
            .iter()
            .map(|s| s.labels[0].1.as_str())
            .collect();
        assert_eq!(labels, ["0", "1"]);
    }

    #[test]
    fn handles_feed_the_snapshot() {
        let registry = Registry::new();
        let counter = registry.counter("reg_counter_total", "c");
        let gauge = registry.gauge("reg_gauge", "g");
        let histogram = registry.histogram("reg_hist_ns", "h");
        counter.add(3);
        gauge.set(-2);
        histogram.record(100);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.value("reg_counter_total"),
            Some(&SeriesValue::Counter(3))
        );
        assert_eq!(snapshot.value("reg_gauge"), Some(&SeriesValue::Gauge(-2)));
        match snapshot.value("reg_hist_ns") {
            Some(SeriesValue::Histogram(h)) => assert_eq!(h.count(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adoption_shares_the_live_cell() {
        let registry = Registry::new();
        let detached = Counter::new();
        detached.add(5);
        registry
            .register_counter("adopted_total", "Adopted after the fact.", &[], &detached)
            .unwrap();
        detached.add(2);
        assert_eq!(
            registry.snapshot().value("adopted_total"),
            Some(&SeriesValue::Counter(7))
        );
    }

    #[test]
    fn invalid_and_duplicate_registrations_are_rejected() {
        let registry = Registry::new();
        let counter = Counter::new();
        assert_eq!(
            registry.register_counter("bad name", "x", &[], &counter),
            Err(RegistryError::InvalidName("bad name".to_string()))
        );
        assert_eq!(
            registry.register_counter("1leading", "x", &[], &counter),
            Err(RegistryError::InvalidName("1leading".to_string()))
        );
        registry
            .register_counter("dup_total", "x", &[], &counter)
            .unwrap();
        assert_eq!(
            registry.register_counter("dup_total", "x", &[], &counter),
            Err(RegistryError::DuplicateSeries("dup_total".to_string()))
        );
        // Same family, different labels: allowed.
        registry
            .register_counter("dup_total", "x", &[("worker", "0")], &counter)
            .unwrap();
        // Same family, different kind: rejected.
        assert_eq!(
            registry.register_gauge("dup_total", "x", &[("worker", "1")], &Gauge::new()),
            Err(RegistryError::KindMismatch("dup_total".to_string()))
        );
    }

    #[test]
    fn aggregated_sums_matching_series_and_passes_strays_through() {
        let scrape = |requests: u64, depth: i64, latencies: &[u64]| {
            let registry = Registry::new();
            registry
                .counter_with("agg_requests_total", "r", &[("worker", "0")])
                .add(requests);
            registry.gauge("agg_queue_depth", "d").set(depth);
            let histogram = registry.histogram("agg_latency_ns", "l");
            for &value in latencies {
                histogram.record(value);
            }
            registry.snapshot()
        };
        let left = scrape(3, 2, &[100, 200]);
        let mut right = scrape(4, 5, &[300]);
        // A series only the right part carries must survive untouched.
        let extra = Registry::new();
        extra
            .counter_with("agg_requests_total", "r", &[("worker", "1")])
            .add(9);
        right = RegistrySnapshot::aggregated(vec![right, extra.snapshot()]);
        let total = RegistrySnapshot::aggregated(vec![left, right]);
        let workers = &total.family("agg_requests_total").unwrap().series;
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].value, SeriesValue::Counter(7));
        assert_eq!(workers[1].value, SeriesValue::Counter(9));
        assert_eq!(total.value("agg_queue_depth"), Some(&SeriesValue::Gauge(7)));
        match total.value("agg_latency_ns") {
            Some(SeriesValue::Histogram(h)) => {
                assert_eq!(h.count(), 3);
                assert_eq!(h.sum(), 600);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merged_rejects_family_collisions() {
        let left = Registry::new();
        left.counter("server_requests_total", "x");
        let right = Registry::new();
        right.counter("runtime_submitted_total", "y");
        let merged = RegistrySnapshot::merged(vec![left.snapshot(), right.snapshot()]).unwrap();
        assert_eq!(merged.families.len(), 2);
        assert_eq!(merged.families[0].name, "runtime_submitted_total");

        let clash = Registry::new();
        clash.counter("server_requests_total", "x");
        assert_eq!(
            RegistrySnapshot::merged(vec![left.snapshot(), clash.snapshot()]),
            Err(RegistryError::DuplicateFamily(
                "server_requests_total".to_string()
            ))
        );
    }
}
