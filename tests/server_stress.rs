//! Concurrency stress tests of `crosslight::server`: many clients ×
//! pipelined requests against a loopback server across worker counts,
//! checked for exact equivalence with serial in-process evaluation, clean
//! drain on shutdown, and observable load shedding under a saturating mix.

use std::collections::HashMap;

use crosslight::core::simulator::{CrossLightSimulator, SimulationReport};
use crosslight::core::variants::CrossLightVariant;
use crosslight::neural::workload::NetworkWorkload;
use crosslight::neural::zoo::PaperModel;
use crosslight::server::loadgen::{self, Client, LoadGenOptions};
use crosslight::server::server::{Server, ServerOptions};
use crosslight::server::wire::{
    ErrorKind, EvalSpec, MetricsFormat, MetricsFrame, Request, RequestBody, ResponseBody,
};
use crosslight::telemetry::{validate_text, SeriesValue};

/// Serially evaluates the spec a response answered, for equivalence checks.
fn serial_report(spec: &EvalSpec) -> SimulationReport {
    let config = spec.config().expect("stress specs are valid");
    let workload = match &spec.workload {
        crosslight::server::wire::WorkloadRef::Model(model) => {
            NetworkWorkload::from_spec(&model.spec()).unwrap()
        }
        crosslight::server::wire::WorkloadRef::Inline(inline) => inline.clone(),
    };
    CrossLightSimulator::new(config)
        .evaluate(&workload)
        .unwrap()
}

#[test]
fn many_clients_match_serial_evaluation_across_worker_counts() {
    for workers in [1usize, 4] {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerOptions::default()
                .with_workers(workers)
                .with_queue_capacity(10_000),
        )
        .expect("bind loopback server");

        let options = LoadGenOptions::paper_mix(6, 40, 0xC0FFEE + workers as u64);
        let report = loadgen::run(server.local_addr(), &options).expect("load run succeeds");
        assert_eq!(report.sent, 240);
        assert_eq!(report.ok, 240, "nothing may be shed below capacity");
        assert_eq!(report.shed, 0);
        assert!(report.errors.is_empty(), "{:?}", report.errors);

        // Multiset equivalence: every response maps back (by id) to the
        // spec that produced it, and its report equals serial evaluation
        // of that spec — bit for bit.
        let mut expected: HashMap<u64, EvalSpec> = HashMap::new();
        for client in 0..options.clients {
            for (index, spec) in options.client_specs(client).into_iter().enumerate() {
                expected.insert(options.request_id(client, index), spec);
            }
        }
        let mut serial_cache: HashMap<String, SimulationReport> = HashMap::new();
        assert_eq!(report.responses.len(), expected.len());
        for (id, response) in &report.responses {
            let spec = expected.remove(id).expect("unknown or duplicate id");
            let ResponseBody::Eval(frame) = &response.body else {
                panic!("id {id}: expected eval frame, got {response:?}");
            };
            assert_eq!(response.id, Some(*id));
            assert!(frame.worker < workers as u64);
            let key = format!("{spec:?}");
            let serial = serial_cache
                .entry(key)
                .or_insert_with(|| serial_report(&spec));
            assert_eq!(
                frame.report, *serial,
                "id {id}: wire report diverged from serial evaluation"
            );
        }
        assert!(expected.is_empty(), "unanswered ids: {expected:?}");

        // Consistency of the counters after the run.
        let stats = server.stats();
        assert_eq!(stats.server.evals_ok, 240);
        assert_eq!(stats.server.shed_total, 0);
        assert_eq!(stats.server.in_flight, 0);
        assert_eq!(stats.runtime.submitted, 240);
        assert_eq!(stats.runtime.completed, 240);
        assert!(stats.runtime.queue_depths.iter().all(|&d| d == 0));
        assert_eq!(stats.runtime.per_worker.len(), workers);

        // Shutdown must drain cleanly with no hang (the test harness
        // timeout is the watchdog) — and twice is harmless.
        server.shutdown();
    }
}

#[test]
fn pipelined_requests_drain_on_half_close_without_losing_any() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(2)
            .with_queue_capacity(1_000),
    )
    .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Pipeline a burst, never reading, then half-close the write side: the
    // server must still answer every admitted request.
    let specs: Vec<EvalSpec> = (0..50)
        .map(|i| EvalSpec::paper(CrossLightVariant::all()[i % 4], PaperModel::all()[i % 4]))
        .collect();
    for (i, spec) in specs.iter().enumerate() {
        client
            .send(&Request {
                id: i as u64,
                body: RequestBody::Eval(spec.clone()),
            })
            .unwrap();
    }
    // EOF the server's reader while everything is still in flight.
    client.shutdown_write().unwrap();

    let mut seen = std::collections::HashSet::new();
    for _ in 0..specs.len() {
        let response = client.recv().expect("every in-flight request is answered");
        let id = response.id.expect("eval responses carry ids");
        assert!(matches!(response.body, ResponseBody::Eval(_)));
        assert!(seen.insert(id));
    }
    assert_eq!(seen.len(), specs.len());
    // After the drain the server closes the connection.
    assert!(client.recv().is_err());
    server.shutdown();
}

#[test]
fn saturating_mix_sheds_with_typed_overload_and_no_hang() {
    // Capacity 1: a pipelined burst must observably shed, every request
    // must still get exactly one answer, and nothing may hang.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(2)
            .with_queue_capacity(1),
    )
    .expect("bind loopback server");

    let options = LoadGenOptions::paper_mix(4, 64, 7);
    let report = loadgen::run(server.local_addr(), &options).expect("load run succeeds");
    assert_eq!(report.sent, 256);
    assert_eq!(
        report.ok + report.shed,
        256,
        "every request is answered exactly once: {report:?}"
    );
    assert!(report.ok > 0, "some requests must be admitted");
    assert!(
        report.shed > 0,
        "a saturating mix against capacity 1 must shed"
    );
    let stats = server.stats();
    assert_eq!(stats.server.shed_total, report.shed);
    assert_eq!(stats.server.evals_ok, report.ok);
    assert_eq!(stats.server.in_flight, 0);
    server.shutdown();
}

#[test]
fn protocol_errors_stats_and_ping_work_over_the_wire() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(1)
            .with_max_line_bytes(2048),
    )
    .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Ping.
    let pong = client
        .call(&Request {
            id: 3,
            body: RequestBody::Ping,
        })
        .unwrap();
    assert_eq!(pong.id, Some(3));
    assert!(matches!(pong.body, ResponseBody::Pong));

    // Malformed JSON keeps the connection usable and echoes the id when
    // parseable.
    client
        .send_raw("{\"v\":1,\"id\":9,\"op\":\"warp\"}")
        .unwrap();
    let err = client.recv().unwrap();
    assert_eq!(err.id, Some(9));
    assert!(matches!(
        err.body,
        ResponseBody::Error(ref frame) if frame.kind == ErrorKind::Malformed
    ));

    // Wrong version.
    client
        .send_raw("{\"v\":99,\"id\":1,\"op\":\"ping\"}")
        .unwrap();
    let err = client.recv().unwrap();
    assert!(matches!(
        err.body,
        ResponseBody::Error(ref frame) if frame.kind == ErrorKind::UnsupportedVersion
    ));

    // Oversized line: typed error, stream stays synchronized.
    let long = format!("{{\"v\":1,\"id\":1,\"op\":\"{}\"}}", "x".repeat(4096));
    client.send_raw(&long).unwrap();
    let err = client.recv().unwrap();
    assert!(matches!(
        err.body,
        ResponseBody::Error(ref frame) if frame.kind == ErrorKind::Oversized
    ));

    // Invalid architecture dimensions: typed evaluation error.
    let bad = EvalSpec::crosslight(
        CrossLightVariant::OptTed,
        (150, 20, 100, 60), // K < N is rejected
        16,
        crosslight::server::wire::WorkloadRef::Model(PaperModel::CnnCifar10),
    );
    let err = client.eval(11, &bad).unwrap();
    assert_eq!(err.id, Some(11));
    assert!(matches!(
        err.body,
        ResponseBody::Error(ref frame) if frame.kind == ErrorKind::Evaluation
    ));

    // A valid eval still works on the same connection, and stats reflect
    // everything that happened.
    let spec = EvalSpec::paper(CrossLightVariant::OptTed, PaperModel::Lenet5SignMnist);
    let ok = client.eval(12, &spec).unwrap();
    let ResponseBody::Eval(frame) = &ok.body else {
        panic!("expected eval frame, got {ok:?}");
    };
    assert_eq!(frame.report, serial_report(&spec));

    let stats_response = client.stats(13).unwrap();
    let ResponseBody::Stats(stats) = &stats_response.body else {
        panic!("expected stats frame, got {stats_response:?}");
    };
    assert_eq!(stats.server.malformed_total, 2);
    assert_eq!(stats.server.oversized_total, 1);
    assert_eq!(stats.server.evals_ok, 1);
    assert_eq!(stats.server.evals_failed, 1);
    assert_eq!(stats.server.connections_active, 1);
    assert_eq!(stats.runtime.completed, 1);

    // An inline workload evaluates identically to its by-name twin.
    let inline = EvalSpec {
        workload: crosslight::server::wire::WorkloadRef::Inline(
            NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap(),
        ),
        ..spec
    };
    let ok_inline = client.eval(14, &inline).unwrap();
    let ResponseBody::Eval(frame_inline) = &ok_inline.body else {
        panic!("expected eval frame, got {ok_inline:?}");
    };
    assert_eq!(frame_inline.report, frame.report);
    // …and is a cache hit, because the exact-equality cache key compares
    // workloads structurally, not by provenance.
    assert!(frame_inline.cache_hit);

    server.shutdown();
}

#[test]
fn live_stats_snapshots_are_order_consistent_under_load() {
    // Counter snapshots taken *while* traffic is in flight must respect
    // causality: a request is counted as submitted before it can complete,
    // and received before any outcome counter moves.  The stats path reads
    // outcome counters first and causes last, so every live snapshot — not
    // just the quiescent final one — satisfies the invariants.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(4)
            .with_queue_capacity(10_000),
    )
    .expect("bind loopback server");
    let addr = server.local_addr();

    let options = LoadGenOptions::paper_mix(6, 48, 0x57A75);
    let (report, polls) = std::thread::scope(|scope| {
        let load = scope.spawn(|| loadgen::run(addr, &options).expect("load run succeeds"));
        let mut polls = 0u64;
        while !load.is_finished() {
            let stats = server.stats();
            assert!(
                stats.runtime.submitted >= stats.runtime.completed,
                "live snapshot saw completed ({}) ahead of submitted ({})",
                stats.runtime.completed,
                stats.runtime.submitted
            );
            let outcomes = stats.server.evals_ok
                + stats.server.evals_failed
                + stats.server.shed_total
                + stats.server.malformed_total
                + stats.server.oversized_total;
            assert!(
                stats.server.requests_total >= outcomes,
                "live snapshot saw {} outcomes ahead of {} received requests",
                outcomes,
                stats.server.requests_total
            );
            polls += 1;
        }
        (load.join().expect("load thread panicked"), polls)
    });
    assert_eq!(report.ok, report.sent);
    assert!(polls > 0, "the poller must observe live traffic");

    let stats = server.stats();
    assert_eq!(stats.runtime.submitted, stats.runtime.completed);
    assert_eq!(stats.server.evals_ok, report.sent);
    server.shutdown();
}

#[test]
fn metrics_op_exposes_consistent_scrapes_over_the_wire() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(2)
            .with_queue_capacity(1_000),
    )
    .expect("bind loopback server");
    let options = LoadGenOptions::paper_mix(3, 24, 0xABBA);
    let report = loadgen::run(server.local_addr(), &options).expect("load run succeeds");
    assert_eq!(report.ok, report.sent);
    // The load generator's client-side latency histogram covers every
    // response it received.
    assert_eq!(report.latency.count(), report.sent);
    assert!(report.latency.p50() <= report.latency.p99());

    let mut client = Client::connect(server.local_addr()).expect("connect");

    // JSON scrape: one merged registry with both the server_ and runtime_
    // vocabularies, consistent with the stats op.
    let response = client.metrics(1, MetricsFormat::Json).unwrap();
    let ResponseBody::Metrics(MetricsFrame::Snapshot(snapshot)) = &response.body else {
        panic!("expected a metrics snapshot, got {response:?}");
    };
    let scrape = snapshot.to_registry_snapshot();
    for family in [
        "server_requests_total",
        "server_evals_ok_total",
        "server_phase_ns",
        "server_request_ns",
        "runtime_submitted_total",
        "runtime_completed_total",
        "runtime_evaluate_ns",
    ] {
        assert!(
            scrape.family(family).is_some(),
            "scrape is missing {family}"
        );
    }
    let stats = server.stats();
    assert_eq!(
        scrape.value("server_evals_ok_total"),
        Some(&SeriesValue::Counter(stats.server.evals_ok))
    );
    assert_eq!(
        scrape.value("runtime_workers"),
        Some(&SeriesValue::Gauge(2))
    );
    let Some(SeriesValue::Counter(submitted)) = scrape.value("runtime_submitted_total") else {
        panic!("runtime_submitted_total missing");
    };
    assert_eq!(*submitted, report.sent);

    // Text scrape: a valid exposition page with the same families.
    let response = client.metrics(2, MetricsFormat::Text).unwrap();
    let ResponseBody::Metrics(MetricsFrame::Text(page)) = &response.body else {
        panic!("expected a text page, got {response:?}");
    };
    validate_text(page).expect("exposition page validates");
    assert!(page.contains("# TYPE server_request_ns histogram"));
    assert!(page.contains("runtime_completed_total"));

    // Span export drains: a second scrape gets only what arrived since.
    let response = client.metrics(3, MetricsFormat::Spans).unwrap();
    let ResponseBody::Metrics(MetricsFrame::Spans(spans)) = &response.body else {
        panic!("expected span lines, got {response:?}");
    };
    assert!(!spans.is_empty(), "1:1 sampling must export timelines");
    assert!(spans.iter().all(|line| line.starts_with("{\"id\":")));
    let response = client.metrics(4, MetricsFormat::Spans).unwrap();
    let ResponseBody::Metrics(MetricsFrame::Spans(drained)) = &response.body else {
        panic!("expected span lines, got {response:?}");
    };
    assert!(
        drained.len() < spans.len(),
        "draining must hand each timeline to exactly one scraper"
    );

    // An unknown format is a typed error, and the connection stays usable.
    client
        .send_raw("{\"v\":1,\"id\":9,\"op\":\"metrics\",\"format\":\"xml\"}")
        .unwrap();
    let err = client.recv().unwrap();
    assert_eq!(err.id, Some(9));
    assert!(matches!(
        err.body,
        ResponseBody::Error(ref frame) if frame.kind == ErrorKind::Unsupported
    ));
    let pong = client
        .call(&Request {
            id: 10,
            body: RequestBody::Ping,
        })
        .unwrap();
    assert!(matches!(pong.body, ResponseBody::Pong));

    server.shutdown();
}

#[test]
fn mid_frame_request_disconnects_drain_cleanly_at_every_split_point() {
    use std::io::Write as _;

    let server = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(1))
        .expect("bind loopback server");
    let addr = server.local_addr();

    // Peers that die halfway through a request line — cut after the first
    // byte, mid-header, mid-spec, and one byte short of the newline — owe
    // the server nothing and must not wedge, panic, or leak a handle.
    let line = crosslight::server::wire::encode_request(&Request {
        id: 77,
        body: RequestBody::Eval(EvalSpec::paper(
            CrossLightVariant::OptTed,
            PaperModel::Lenet5SignMnist,
        )),
    });
    let cuts = [1, line.len() / 4, line.len() / 2, line.len() - 1];
    for cut in cuts {
        let mut stream = std::net::TcpStream::connect(addr).expect("raw connect");
        stream
            .write_all(&line.as_bytes()[..cut])
            .expect("write a frame fragment");
        stream.flush().expect("flush the fragment");
        drop(stream); // close with the frame incomplete: EOF mid-line
    }

    // Every fragment connection is reaped: the active gauge returns to
    // zero and all accepts are accounted for.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.server.connections_active == 0
            && stats.server.connections_accepted >= cuts.len() as u64
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "mid-frame disconnects were not reaped: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // No fragment produced an answer or an eval: the partial lines died
    // in the reader without reaching the runtime.
    let stats = server.stats();
    assert_eq!(stats.server.evals_ok, 0);
    assert_eq!(stats.server.evals_failed, 0);
    assert_eq!(stats.runtime.submitted, 0);

    // The server still serves the exact request whose fragments it just
    // survived.
    let mut client = Client::connect(addr).expect("connect");
    client.send_raw(&line).expect("send the full line");
    let response = client.recv().expect("full frame is answered");
    assert_eq!(response.id, Some(77));
    assert!(matches!(response.body, ResponseBody::Eval(_)));
    server.shutdown();
}

#[test]
fn truncated_response_is_a_typed_client_error_and_reconnect_recovers() {
    use std::io::{BufRead, BufReader, Write as _};

    // A wire-shaped impostor that truncates its first response mid-line
    // and closes, then behaves on later connections — the shape of a
    // backend crashing while writing and coming back.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind impostor");
    let addr = listener.local_addr().expect("impostor addr");
    let fake = std::thread::spawn(move || {
        for (connection, stream) in listener.incoming().enumerate() {
            let stream = stream.expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = stream;
            let mut line = String::new();
            while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                let id = crosslight::server::wire::peek_id(line.trim_end());
                let full = crosslight::server::wire::encode_response(
                    &crosslight::server::wire::Response {
                        id,
                        body: ResponseBody::Pong,
                    },
                );
                if connection == 0 {
                    // Die halfway through the frame: no newline ever comes.
                    writer
                        .write_all(&full.as_bytes()[..full.len() / 2])
                        .expect("write half a response");
                    writer.flush().expect("flush the half");
                    break; // drop the socket with the frame incomplete
                }
                writer.write_all(full.as_bytes()).expect("write response");
                writer.write_all(b"\n").expect("terminate response");
                writer.flush().expect("flush response");
                line.clear();
            }
            if connection == 1 {
                break; // two connections are all this test dials
            }
        }
    });

    // The read deadline bounds the truncated read; the failure surfaces
    // as a typed io::Error, never a hang or a panic.
    let mut client = Client::connect_with(
        addr,
        crosslight::server::loadgen::ClientOptions::with_deadline(std::time::Duration::from_secs(
            5,
        )),
    )
    .expect("connect to impostor");
    client
        .send(&Request {
            id: 21,
            body: RequestBody::Ping,
        })
        .expect("send ping");
    client.flush().expect("flush ping");
    let err = client.recv().expect_err("a truncated response is an error");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
        ),
        "mid-frame close must surface as a typed transport error, got {err:?}"
    );

    // One `reconnect()` later the same client object completes the call.
    client.reconnect().expect("redial the impostor");
    let pong = client
        .call(&Request {
            id: 22,
            body: RequestBody::Ping,
        })
        .expect("the fresh connection serves");
    assert_eq!(pong.id, Some(22));
    assert!(matches!(pong.body, ResponseBody::Pong));
    drop(client);
    fake.join().expect("impostor thread exits cleanly");
}

#[test]
fn shutdown_closes_idle_connections_and_new_connects_fail() {
    let server = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(1))
        .expect("bind loopback server");
    let addr = server.local_addr();
    let mut idle = Client::connect(addr).expect("connect");
    // Shutdown with an idle connected client must not hang, and the
    // client's next read must see EOF.
    server.shutdown();
    let outcome = idle.recv();
    assert!(
        outcome.is_err(),
        "idle client must see EOF, got {outcome:?}"
    );
    // The listener is gone: new connections are refused (or reset).
    assert!(Client::connect(addr).is_err());
}

/// Driver half of `ten_thousand_connections_on_a_bounded_thread_budget`:
/// when run directly (no env), this is a no-op pass.  The parent test
/// re-executes the test binary with `--exact swarm_child` and the
/// `CROSSLIGHT_SWARM_CHILD_ADDR` env set, so the connection swarm lives in
/// its own process with its own file-descriptor budget, and the parent can
/// assert the *server* process's thread count in isolation.
///
/// Protocol on stdio: child prints `SWARM_CONNECTED <n>`, blocks until the
/// parent writes a `GO` line, runs one eval per connection, prints
/// `SWARM_DONE ok=<ok> errors=<errors>`, and exits.
#[test]
fn swarm_child() {
    use std::io::{BufRead as _, Write as _};

    let Ok(addr) = std::env::var("CROSSLIGHT_SWARM_CHILD_ADDR") else {
        return;
    };
    let addr: std::net::SocketAddr = addr.parse().expect("parse swarm server address");
    let conns: usize = std::env::var("CROSSLIGHT_SWARM_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    let mut swarm =
        crosslight::server::loadgen::connect_swarm(addr, conns, 128).expect("swarm connects");
    let mut stdout = std::io::stdout();
    writeln!(stdout, "SWARM_CONNECTED {}", swarm.connected()).expect("report connect count");
    stdout.flush().expect("flush connect report");

    let mut go = String::new();
    std::io::stdin()
        .lock()
        .read_line(&mut go)
        .expect("wait for GO");

    let spec = EvalSpec::paper(CrossLightVariant::OptTed, PaperModel::Lenet5SignMnist);
    let report = swarm.run(&spec, 1, 1_000_000);
    writeln!(
        stdout,
        "SWARM_DONE ok={} errors={}",
        report.ok, report.errors
    )
    .expect("report run outcome");
    stdout.flush().expect("flush run report");
}

#[test]
fn ten_thousand_connections_on_a_bounded_thread_budget() {
    use std::io::{BufRead as _, Write as _};

    // CI's reduced tier dials this down via CROSSLIGHT_SWARM_CONNS; the
    // default is the full ten thousand.
    let conns: usize = std::env::var("CROSSLIGHT_SWARM_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(2)
            .with_event_loops(2)
            .with_queue_capacity(conns.max(64))
            .with_trace_sampling(64),
    )
    .expect("bind loopback server");

    // The swarm lives in a child process (own fd budget, own threads), so
    // the thread count read below is the server's alone.
    let exe = std::env::current_exe().expect("locate test binary");
    let mut child = std::process::Command::new(exe)
        .args(["swarm_child", "--exact", "--nocapture", "--test-threads=1"])
        .env(
            "CROSSLIGHT_SWARM_CHILD_ADDR",
            server.local_addr().to_string(),
        )
        .env("CROSSLIGHT_SWARM_CONNS", conns.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn swarm child");
    let mut child_out =
        std::io::BufReader::new(child.stdout.take().expect("child stdout piped")).lines();
    let mut next_report = |prefix: &str| -> String {
        loop {
            let line = child_out
                .next()
                .unwrap_or_else(|| panic!("child exited before {prefix}"))
                .expect("read child stdout");
            // libtest prints its own "test swarm_child ... " progress
            // without a newline, so the marker may land mid-line: match
            // it anywhere.
            if let Some(pos) = line.find(prefix) {
                return line[pos + prefix.len()..].trim().to_string();
            }
        }
    };

    let connected: usize = next_report("SWARM_CONNECTED ")
        .parse()
        .expect("parse connect count");
    assert_eq!(connected, conns, "every swarm connection must establish");

    // The server sees them all concurrently…
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let stats = server.stats();
        if stats.server.connections_active >= conns as u64 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never saw all {conns} connections: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // …on a bounded thread budget: the reactor multiplexes, it does not
    // spawn per connection.  (Other tests may run concurrently in this
    // process; 64 is far below the ~3 × connections a thread-per-
    // connection design would need and far above what a handful of
    // fixed-pool servers use.)
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    let threads: usize = status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .expect("Threads: line present")
        .trim()
        .parse()
        .expect("parse thread count");
    assert!(
        threads < 64,
        "thread budget blown: {threads} threads while serving {conns} connections"
    );

    // Release the request phase: one eval per connection, all answered.
    child
        .stdin
        .as_mut()
        .expect("child stdin piped")
        .write_all(b"GO\n")
        .expect("start the request phase");
    let done = next_report("SWARM_DONE ");
    let (ok_part, err_part) = done.split_once(' ').expect("done line has two fields");
    let ok: u64 = ok_part
        .strip_prefix("ok=")
        .expect("ok field")
        .parse()
        .expect("parse ok count");
    let errors: u64 = err_part
        .strip_prefix("errors=")
        .expect("errors field")
        .parse()
        .expect("parse errors count");
    assert_eq!(errors, 0, "no request of the swarm may fail");
    assert_eq!(ok, conns as u64, "every connection gets its answer");
    let status = child.wait().expect("reap swarm child");
    assert!(status.success(), "swarm child failed: {status:?}");

    // After the swarm disconnects, everything is reclaimed: the active
    // gauge and the write-queue depth gauge both return to zero — the
    // regression this PR's gauge-leak fix is guarding.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let stats = server.stats();
        let depth = server
            .metrics_snapshot()
            .value("server_write_queue_depth")
            .cloned();
        if stats.server.connections_active == 0 && depth == Some(SeriesValue::Gauge(0)) {
            assert_eq!(stats.server.evals_ok, conns as u64);
            assert_eq!(stats.server.shed_total, 0);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "teardown leaked accounting: {stats:?}, write queue depth {depth:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn micro_batching_is_bit_identical_across_batch_settings() {
    use std::io::{BufRead as _, BufReader, Write as _};

    // The same pipelined request sequence against a batch-of-one server
    // and a wide-window batching server must produce byte-for-byte the
    // same response lines (as a multiset — completion order may differ):
    // batching is a scheduling optimization, never a semantic one.
    let specs: Vec<EvalSpec> = (0..48)
        .map(|i| EvalSpec::paper(CrossLightVariant::all()[i % 4], PaperModel::all()[i % 4]))
        .collect();
    let mut request_block = String::new();
    for (i, spec) in specs.iter().enumerate() {
        request_block.push_str(&crosslight::server::wire::encode_request(&Request {
            id: i as u64,
            body: RequestBody::Eval(spec.clone()),
        }));
        request_block.push('\n');
    }

    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for (batch_max, window) in [(1usize, 50u64), (64, 300)] {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerOptions::default()
                .with_workers(2)
                .with_queue_capacity(1_000)
                .with_batch_max(batch_max)
                .with_batch_window(std::time::Duration::from_micros(window)),
        )
        .expect("bind loopback server");
        let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect raw");
        stream
            .write_all(request_block.as_bytes())
            .expect("pipeline the burst");
        stream.flush().expect("flush the burst");
        let mut reader = BufReader::new(stream);
        let mut lines = Vec::with_capacity(specs.len());
        for _ in 0..specs.len() {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read response line");
            assert!(n > 0, "server closed before answering the burst");
            lines.push(line);
        }
        lines.sort();
        transcripts.push(lines);
        server.shutdown();
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "micro-batching changed response bytes"
    );
}

#[test]
fn snapshot_transfers_honor_the_smaller_peer_line_budget() {
    // A server with a large line budget talking to a client with a small
    // one: the client advertises `max_chunk_bytes` and the server sizes
    // chunks under the *smaller* limit — same entries, more chunks.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(1)
            .with_max_line_bytes(256 * 1024),
    )
    .expect("bind loopback server");
    let addr = server.local_addr();

    // Warm the caches so there is something to transfer.
    let mut warm = Client::connect(addr).expect("connect");
    for (i, spec) in (0..4)
        .map(|i| EvalSpec::paper(CrossLightVariant::all()[i], PaperModel::all()[i]))
        .enumerate()
    {
        let response = warm.eval(i as u64, &spec).expect("warm eval");
        assert!(matches!(response.body, ResponseBody::Eval(_)));
    }

    // One transfer per dedicated connection, as the client docs require.
    let chunks_of = |max_chunk_bytes: Option<u64>| -> (usize, Vec<String>) {
        use std::io::{BufRead as _, BufReader, Write as _};
        let mut stream = std::net::TcpStream::connect(addr).expect("connect raw");
        let line = crosslight::server::wire::encode_request(&Request {
            id: 7,
            body: RequestBody::Snapshot { max_chunk_bytes },
        });
        stream.write_all(line.as_bytes()).expect("send snapshot op");
        stream.write_all(b"\n").expect("terminate snapshot op");
        let mut reader = BufReader::new(stream);
        let mut chunks = 0usize;
        let mut entries = Vec::new();
        loop {
            let mut raw = String::new();
            assert!(
                reader.read_line(&mut raw).expect("read snapshot frame") > 0,
                "stream ended before snapshot_end"
            );
            let response =
                crosslight::server::wire::decode_response(raw.trim_end()).expect("decode frame");
            match response.body {
                ResponseBody::Snapshot(chunk) => {
                    // A single unsplittable entry may exceed the budget
                    // (it ships alone); any multi-entry chunk must fit.
                    if let Some(limit) = max_chunk_bytes {
                        assert!(
                            raw.len() as u64 <= limit || chunk.entries.len() == 1,
                            "multi-entry frame of {} bytes exceeds the \
                             advertised {limit}-byte budget",
                            raw.len()
                        );
                    }
                    assert_eq!(chunk.seq, chunks as u64, "chunks arrive in sequence");
                    chunks += 1;
                    entries.extend(chunk.entries.into_iter().map(|e| format!("{e:?}")));
                }
                ResponseBody::SnapshotEnd(end) => {
                    assert_eq!(end.entries as usize, entries.len());
                    break;
                }
                other => panic!("unexpected frame in snapshot stream: {other:?}"),
            }
        }
        entries.sort();
        (chunks, entries)
    };

    let (full_chunks, full_entries) = chunks_of(None);
    let (limited_chunks, limited_entries) = chunks_of(Some(4096));
    assert!(!full_entries.is_empty(), "warm caches must export entries");
    assert_eq!(
        limited_entries, full_entries,
        "the peer budget must never change *what* is transferred"
    );
    assert!(
        limited_chunks >= full_chunks,
        "a smaller budget cannot use fewer chunks ({limited_chunks} < {full_chunks})"
    );
    assert!(
        limited_chunks > 1,
        "a 4 KiB budget must split this transfer ({limited_chunks} chunk)"
    );

    // The typed client helper sees the same entries through its own
    // advertised budget.
    let mut typed = Client::connect(addr).expect("connect typed");
    let mut typed_entries: Vec<String> = typed
        .snapshot_entries_limited(9, Some(4096))
        .expect("typed limited transfer")
        .into_iter()
        .map(|e| format!("{e:?}"))
        .collect();
    typed_entries.sort();
    assert_eq!(typed_entries, full_entries);
    server.shutdown();
}
