//! Acceptance test for the architecture-generic evaluation API, end to end
//! through the facade: the cross-architecture DSE frontier over the union
//! grid must be identical whether the reports are computed in-process
//! (streaming sweep or runtime service) or collected over the wire protocol
//! — and identical across worker counts on every path.

use crosslight::baselines::ArchSpec;
use crosslight::core::simulator::SimulationReport;
use crosslight::experiments::arch_zoo;
use crosslight::neural::zoo::PaperModel;
use crosslight::runtime::pool::{EvalService, RuntimeOptions};
use crosslight::server::loadgen::Client;
use crosslight::server::server::{Server, ServerOptions};
use crosslight::server::wire::{ArchRequest, EvalSpec, ResponseBody, WorkloadRef};

/// Collects per-candidate report sets (one per Table I model) over the wire.
fn wire_reports(addr: std::net::SocketAddr, candidates: &[ArchSpec]) -> Vec<Vec<SimulationReport>> {
    let mut client = Client::connect(addr).expect("connect to loopback server");
    let mut out = Vec::with_capacity(candidates.len());
    let mut id = 0u64;
    for spec in candidates {
        let arch = ArchRequest::for_spec(spec).expect("union grid uses named variants");
        let mut set = Vec::with_capacity(4);
        for model in PaperModel::all() {
            let request = EvalSpec::for_arch(arch.clone(), WorkloadRef::Model(model));
            let response = client.eval(id, &request).expect("eval round-trip");
            assert_eq!(response.id, Some(id));
            let ResponseBody::Eval(frame) = response.body else {
                panic!("id {id}: expected eval frame, got {response:?}");
            };
            set.push(frame.report);
            id += 1;
        }
        out.push(set);
    }
    out
}

#[test]
fn wire_served_frontier_matches_in_process_evaluation_exactly() {
    let candidates = arch_zoo::union_candidates();
    let top_k = 6;
    let budget = arch_zoo::DEFAULT_POWER_BUDGET_W;

    // Reference: the in-process streaming sweep (worker-count independent).
    let streaming = arch_zoo::run_streaming(&candidates, 3, top_k, budget).unwrap();

    for workers in [1usize, 4] {
        // In-process, through the runtime service.
        let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
        let in_process = arch_zoo::run_on(&service, &candidates, top_k, budget).unwrap();
        assert_eq!(streaming, in_process, "run_on, {workers} workers");

        // Over the wire, through the TCP/JSON-lines server.
        let server = Server::bind(
            "127.0.0.1:0",
            ServerOptions::default()
                .with_workers(workers)
                .with_queue_capacity(1_000),
        )
        .expect("bind loopback server");
        let reports = wire_reports(server.local_addr(), &candidates);
        let wire = arch_zoo::frontier_from_reports(&candidates, &reports, top_k, budget).unwrap();
        assert_eq!(streaming, wire, "wire, {workers} workers");
        server.shutdown();
    }

    // The frontier is non-trivial: it found an in-budget winner and kept a
    // full top-K.
    assert!(streaming.best.is_some());
    assert_eq!(streaming.top.len(), top_k);
    assert_eq!(streaming.evaluated, candidates.len());
}
