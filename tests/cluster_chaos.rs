//! Chaos acceptance suite for the fault-tolerant cluster tier.
//!
//! Every test routes real wire traffic through a loopback [`Router`] over
//! in-process backend [`Server`]s and holds the cluster to the same
//! transparency bar as every other serving layer in this workspace:
//! reports are **bit-identical** to one in-process [`EvalService`] — the
//! canonical re-encoding of each report must match byte for byte — no
//! matter which backends die, stall, or garble mid-sweep.  The multiset
//! comparison (sorted canonical lines) absorbs the reordering failover
//! legitimately introduces.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crosslight::cluster::{
    CircuitState, FaultAction, FaultPlan, FaultPoint, FaultRule, HedgePolicy, RetryPolicy, Router,
    RouterOptions,
};
use crosslight::experiments::arch_zoo;
use crosslight::neural::workload::NetworkWorkload;
use crosslight::neural::zoo::PaperModel;
use crosslight::runtime::pool::{EvalService, RuntimeOptions};
use crosslight::server::loadgen::{Client, ClientOptions};
use crosslight::server::server::{Server, ServerOptions};
use crosslight::server::wire::{
    self, ArchRequest, ErrorKind, EvalFrame, EvalSpec, MetricsFormat, MetricsFrame, Request,
    RequestBody, Response, ResponseBody, WireMetricsSnapshot, WorkloadRef,
};

fn workload_table() -> [Arc<NetworkWorkload>; 4] {
    PaperModel::all().map(|model| {
        Arc::new(NetworkWorkload::from_spec(&model.spec()).expect("Table I workloads are valid"))
    })
}

/// A deterministic mixed arch-zoo sweep: the union grid's architectures
/// cycled across the Table I models until `len` specs exist.
fn mixed_sweep(len: usize) -> Vec<EvalSpec> {
    let candidates = arch_zoo::union_candidates();
    let mut specs = Vec::with_capacity(len);
    'fill: loop {
        for candidate in &candidates {
            let arch = ArchRequest::for_spec(candidate).expect("union grid uses named variants");
            for model in PaperModel::all() {
                specs.push(EvalSpec::for_arch(arch.clone(), WorkloadRef::Model(model)));
                if specs.len() == len {
                    break 'fill;
                }
            }
        }
    }
    specs
}

/// The canonical byte encoding of an answered eval, with the serving
/// metadata (cache hit, worker index) normalized away: those legitimately
/// differ between one service and a cluster, the report must not.
fn canonical_line(id: u64, report: crosslight::core::simulator::SimulationReport) -> String {
    wire::encode_response(&Response {
        id: Some(id),
        body: ResponseBody::Eval(EvalFrame {
            report,
            cache_hit: false,
            worker: 0,
        }),
    })
}

/// Reference answers from one in-process `EvalService`, ids = indices.
fn reference_lines(specs: &[EvalSpec]) -> Vec<String> {
    let table = workload_table();
    let service = EvalService::new(RuntimeOptions::default().with_workers(4));
    let requests = specs
        .iter()
        .enumerate()
        .map(|(id, spec)| {
            spec.to_eval_request(id as u64, &table)
                .expect("sweep specs are valid")
        })
        .collect();
    let responses = service
        .submit_batch(requests)
        .expect("reference batch evaluates");
    responses
        .into_iter()
        .enumerate()
        .map(|(id, response)| canonical_line(id as u64, response.report))
        .collect()
}

/// Pipelines the sweep through one client connection and returns the
/// canonicalized answers in arrival order; panics on any non-eval answer.
fn cluster_lines(client: &mut Client, specs: &[EvalSpec]) -> Vec<String> {
    for (id, spec) in specs.iter().enumerate() {
        client
            .send(&Request {
                id: id as u64,
                body: RequestBody::Eval(spec.clone()),
            })
            .expect("pipelined send");
    }
    client.flush().expect("pipelined flush");
    (0..specs.len()).map(|_| recv_eval(client)).collect()
}

fn recv_eval(client: &mut Client) -> String {
    let response = client.recv().expect("every accepted request is answered");
    let id = response.id.expect("eval answers carry the request id");
    match response.body {
        ResponseBody::Eval(frame) => canonical_line(id, frame.report),
        other => panic!("id {id}: expected a report, got {other:?}"),
    }
}

fn sorted(mut lines: Vec<String>) -> Vec<String> {
    lines.sort_unstable();
    lines
}

fn bind_backend() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(2)
            .with_trace_sampling(0),
    )
    .expect("bind a loopback backend")
}

fn chaos_options() -> RouterOptions {
    RouterOptions::default()
        .with_health(
            Duration::from_millis(20),
            Duration::from_millis(250),
            Duration::from_millis(100),
        )
        .with_failure_threshold(2)
        .with_retry(RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0xC1A05,
        })
        .with_retry_budget(1_000)
        .with_request_deadline(Duration::from_secs(30))
}

/// Sums one counter family (over all label sets) out of a metrics scrape.
fn family_total(snapshot: &WireMetricsSnapshot, name: &str) -> u64 {
    use crosslight::server::wire::WireMetricValue;
    snapshot
        .families
        .iter()
        .filter(|family| family.name == name)
        .flat_map(|family| &family.series)
        .map(|series| match series.value {
            WireMetricValue::Counter(value) => value,
            WireMetricValue::Gauge(value) => value.max(0) as u64,
            WireMetricValue::Histogram(ref h) => h.count,
        })
        .sum()
}

/// One direct metrics scrape of a backend server (not through the router).
fn backend_scrape(addr: SocketAddr) -> WireMetricsSnapshot {
    let mut client =
        Client::connect_with(addr, ClientOptions::with_deadline(Duration::from_secs(10)))
            .expect("connect to backend for scrape");
    let response = client.metrics(0, MetricsFormat::Json).expect("metrics op");
    match response.body {
        ResponseBody::Metrics(MetricsFrame::Snapshot(snapshot)) => snapshot,
        other => panic!("expected a metrics snapshot, got {other:?}"),
    }
}

fn wait_for(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn three_backend_cluster_is_bit_identical_to_one_eval_service() {
    let backends = [bind_backend(), bind_backend(), bind_backend()];
    let addrs: Vec<SocketAddr> = backends.iter().map(Server::local_addr).collect();
    let router = Router::bind("127.0.0.1:0", &addrs, chaos_options()).expect("bind router");

    let specs = mixed_sweep(96);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");
    let served = cluster_lines(&mut client, &specs);
    assert_eq!(sorted(served), sorted(reference_lines(&specs)));

    let stats = router.stats();
    assert_eq!(stats.evals_routed, 96);
    assert_eq!(stats.evals_ok, 96);
    assert_eq!(stats.evals_failed, 0);
    assert_eq!(stats.shed_total, 0);

    // The healthy path also exposes its telemetry vocabulary.
    let scrape = WireMetricsSnapshot::from(&router.metrics_snapshot());
    assert_eq!(family_total(&scrape, "cluster_evals_ok_total"), 96);
    assert!(family_total(&scrape, "cluster_forwarded_total") >= 96);
    // A fast sweep can outrun the first prober tick; probes are periodic,
    // so they must show up shortly regardless.
    wait_for("the first health probe", Duration::from_secs(10), || {
        let scrape = WireMetricsSnapshot::from(&router.metrics_snapshot());
        family_total(&scrape, "cluster_health_probes_total") > 0
    });

    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

#[test]
fn killing_a_backend_mid_sweep_loses_zero_accepted_requests() {
    let mut backends: Vec<Option<Server>> = (0..3).map(|_| Some(bind_backend())).collect();
    let addrs: Vec<SocketAddr> = backends
        .iter()
        .map(|backend| backend.as_ref().unwrap().local_addr())
        .collect();
    // A long cooldown keeps the killed backend from rejoining mid-test.
    let options = chaos_options().with_health(
        Duration::from_millis(20),
        Duration::from_millis(250),
        Duration::from_secs(600),
    );
    let router = Router::bind("127.0.0.1:0", &addrs, options).expect("bind router");

    let specs = mixed_sweep(120);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");
    for (id, spec) in specs.iter().enumerate() {
        client
            .send(&Request {
                id: id as u64,
                body: RequestBody::Eval(spec.clone()),
            })
            .expect("pipelined send");
    }
    client.flush().expect("pipelined flush");

    // Take a few answers to prove the sweep is in flight, then kill a
    // backend with ~110 requests outstanding across the cluster.
    let mut served: Vec<String> = (0..8).map(|_| recv_eval(&mut client)).collect();
    backends[1].take().unwrap().shutdown();
    served.extend((8..specs.len()).map(|_| recv_eval(&mut client)));

    // Zero lost, zero shed, bit-identical — and the failover machinery
    // demonstrably did the saving.
    assert_eq!(sorted(served), sorted(reference_lines(&specs)));
    let stats = router.stats();
    assert_eq!(stats.evals_ok, 120);
    assert_eq!(stats.shed_total, 0);
    assert!(
        stats.failovers >= 1,
        "the kill must force at least one re-route, got {stats:?}"
    );
    let scrape = WireMetricsSnapshot::from(&router.metrics_snapshot());
    assert!(
        family_total(&scrape, "cluster_backend_failures_total") >= 1,
        "transport faults against the killed backend must be counted"
    );

    router.shutdown();
    for backend in backends.into_iter().flatten() {
        backend.shutdown();
    }
}

#[test]
fn restarted_backend_is_readmitted_through_half_open_probing() {
    let healthy = bind_backend();
    let doomed = bind_backend();
    let addrs = vec![healthy.local_addr(), doomed.local_addr()];
    let router = Router::bind("127.0.0.1:0", &addrs, chaos_options().with_replication(2))
        .expect("bind router");

    doomed.shutdown();
    // The prober notices within a couple of intervals and trips the breaker.
    wait_for("the breaker to open", Duration::from_secs(10), || {
        router.stats().backend_states[1] == CircuitState::Open
    });

    // One live replica still serves the whole keyspace.
    let specs = mixed_sweep(16);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");
    assert_eq!(
        sorted(cluster_lines(&mut client, &specs)),
        sorted(reference_lines(&specs))
    );

    // Restart on a fresh ephemeral port: same routing identity, new addr.
    let reborn = bind_backend();
    router.update_backend_addr(1, reborn.local_addr());
    wait_for("readmission via half-open", Duration::from_secs(10), || {
        let stats = router.stats();
        stats.backend_states[1] == CircuitState::Closed && stats.readmitted[1] >= 1
    });
    let scrape = WireMetricsSnapshot::from(&router.metrics_snapshot());
    assert!(family_total(&scrape, "cluster_backend_readmitted_total") >= 1);

    // The readmitted backend carries real traffic again: replication 2
    // puts it back in every shard's replica set, and the sweep stays
    // bit-identical.
    let before = family_total(
        &WireMetricsSnapshot::from(&router.metrics_snapshot()),
        "cluster_forwarded_total",
    );
    let specs = mixed_sweep(32);
    assert_eq!(
        sorted(cluster_lines(&mut client, &specs)),
        sorted(reference_lines(&specs))
    );
    let after = family_total(
        &WireMetricsSnapshot::from(&router.metrics_snapshot()),
        "cluster_forwarded_total",
    );
    assert!(after >= before + 32);

    router.shutdown();
    healthy.shutdown();
    reborn.shutdown();
}

#[test]
fn all_backends_down_degrades_to_bounded_retryable_unavailable() {
    // Bind-then-drop three listeners: live addresses nobody answers on.
    let addrs: Vec<SocketAddr> = (0..3)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind throwaway listener");
            listener.local_addr().expect("throwaway listener addr")
        })
        .collect();
    let options = chaos_options()
        .with_request_deadline(Duration::from_secs(2))
        .with_retry(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0xC1A05,
        });
    let router = Router::bind("127.0.0.1:0", &addrs, options).expect("bind router");

    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(30)),
    )
    .expect("connect to router");

    // Health ops keep working with zero live backends.
    let pong = client
        .call(&Request {
            id: 9,
            body: RequestBody::Ping,
        })
        .expect("ping is answered locally");
    assert!(matches!(pong.body, ResponseBody::Pong));

    // An eval is answered — with the explicit retryable shed, within the
    // deadline, never a hang.
    let spec = &mixed_sweep(1)[0];
    let start = Instant::now();
    let response = client
        .eval(7, spec)
        .expect("the shed is an answer, not a hang");
    let elapsed = start.elapsed();
    let ResponseBody::Error(frame) = response.body else {
        panic!("expected a shed, got {response:?}");
    };
    assert_eq!(frame.kind, ErrorKind::Unavailable);
    assert!(frame.kind.retryable(), "unavailable must invite a retry");
    assert!(
        elapsed < Duration::from_secs(10),
        "the shed must arrive promptly, took {elapsed:?}"
    );

    // Stats aggregation degrades the same way.
    let stats_response = client.stats(8).expect("stats op is answered");
    assert!(matches!(
        stats_response.body,
        ResponseBody::Error(ref frame) if frame.kind == ErrorKind::Unavailable
    ));

    let stats = router.stats();
    assert!(
        stats.shed_total >= 1,
        "the shed must be observable: {stats:?}"
    );
    router.shutdown();
}

#[test]
fn seeded_fault_plan_chaos_sweep_stays_bit_identical() {
    let faults = FaultPlan::new(vec![
        FaultRule::periodic_seeded(
            FaultPoint::BackendSend,
            None,
            13,
            0xC1A05,
            FaultAction::Kill,
        ),
        FaultRule::periodic_seeded(
            FaultPoint::BackendRecv,
            None,
            11,
            0xC1A05,
            FaultAction::Garble,
        ),
        FaultRule::periodic_seeded(
            FaultPoint::BackendSend,
            Some(2),
            17,
            0xC1A05,
            FaultAction::Slow(1),
        ),
    ]);
    let backends = [bind_backend(), bind_backend(), bind_backend()];
    let addrs: Vec<SocketAddr> = backends.iter().map(Server::local_addr).collect();
    let router = Router::bind(
        "127.0.0.1:0",
        &addrs,
        chaos_options().with_faults(Arc::clone(&faults)),
    )
    .expect("bind router");

    let specs = mixed_sweep(96);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");
    let served = cluster_lines(&mut client, &specs);
    assert_eq!(sorted(served), sorted(reference_lines(&specs)));

    let stats = router.stats();
    assert_eq!(stats.evals_ok, 96, "every request answered with a report");
    assert_eq!(stats.shed_total, 0);
    assert!(
        faults.injected() > 0,
        "the plan must actually have fired: {stats:?}"
    );
    assert_eq!(stats.faults_injected, faults.injected());
    assert!(
        stats.failovers >= 1,
        "killed/garbled exchanges must be re-routed: {stats:?}"
    );

    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

#[test]
fn readmitted_backend_is_warm_restored_and_serves_its_shards_with_zero_cold_misses() {
    let donor = bind_backend();
    let doomed = bind_backend();
    let addrs = vec![donor.local_addr(), doomed.local_addr()];
    // Replication 2 over 2 backends: every shard lives on both, so the
    // donor can rebuild the rejoining backend's entire warm state.
    let router = Router::bind("127.0.0.1:0", &addrs, chaos_options().with_replication(2))
        .expect("bind router");

    let specs = mixed_sweep(24);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");
    let reference = sorted(reference_lines(&specs));

    // Phase 1 — warm the cluster, then kill one backend.
    assert_eq!(sorted(cluster_lines(&mut client, &specs)), reference);
    doomed.shutdown();
    wait_for("the breaker to open", Duration::from_secs(10), || {
        router.stats().backend_states[1] == CircuitState::Open
    });

    // Phase 2 — the outage sweep: the survivor absorbs the dead backend's
    // shards, so it now holds the full warm state a donor needs.
    assert_eq!(sorted(cluster_lines(&mut client, &specs)), reference);

    // Phase 3 — restart cold on a fresh port and wait for the warm
    // readmission: probation → half-open probe → warming handoff → closed.
    let reborn = bind_backend();
    router.update_backend_addr(1, reborn.local_addr());
    wait_for("warm readmission", Duration::from_secs(10), || {
        let stats = router.stats();
        stats.backend_states[1] == CircuitState::Closed && stats.readmitted[1] >= 1
    });
    let scrape = WireMetricsSnapshot::from(&router.metrics_snapshot());
    assert!(
        family_total(&scrape, "cluster_handoff_snapshots_sent_total") >= 1,
        "the donor must have been asked for a snapshot"
    );
    assert_eq!(family_total(&scrape, "cluster_handoff_restored_total"), 1);
    assert!(
        family_total(&scrape, "cluster_handoff_entries_total") as usize >= specs.len(),
        "every shard of the rejoining backend must have been transferred"
    );
    assert_eq!(family_total(&scrape, "cluster_handoff_failed_total"), 0);
    assert!(
        family_total(&scrape, "cluster_handoff_warmup_ns") >= 1,
        "the warm-up duration must be recorded"
    );
    let restored = backend_scrape(reborn.local_addr());
    assert_eq!(family_total(&restored, "server_restores_total"), 1);
    assert!(family_total(&restored, "server_restore_entries_total") as usize >= specs.len());

    // Phase 4 — the proof of warmth: the sweep stays bit-identical, the
    // readmitted backend carries real traffic again, and it does so
    // without a single cold result-cache or model-cache miss — its first
    // routed requests already hit the restored state.
    assert_eq!(sorted(cluster_lines(&mut client, &specs)), reference);
    let after = backend_scrape(reborn.local_addr());
    assert!(
        family_total(&after, "server_evals_ok_total") >= 1,
        "the readmitted backend must serve its shards again"
    );
    assert!(family_total(&after, "runtime_result_cache_hits_total") >= 1);
    assert_eq!(
        family_total(&after, "runtime_result_cache_misses_total"),
        0,
        "a warm-restored backend must never recompute a handed-off shard"
    );
    assert_eq!(
        family_total(&after, "runtime_model_cache_misses_total"),
        0,
        "a warm-restored backend must never re-prepare a model"
    );

    router.shutdown();
    donor.shutdown();
    reborn.shutdown();
}

#[test]
fn corrupted_handoff_falls_back_to_cold_readmission_without_wedging() {
    // Garble every warm-state transfer: the restore stream arrives
    // corrupted at the rejoining backend, which must reject it with a
    // typed error — and the router must readmit the backend cold.
    let faults = FaultPlan::new(vec![FaultRule::always(
        FaultPoint::Handoff,
        Some(1),
        FaultAction::Garble,
    )]);
    let donor = bind_backend();
    let doomed = bind_backend();
    let addrs = vec![donor.local_addr(), doomed.local_addr()];
    let options = chaos_options()
        .with_replication(2)
        .with_faults(Arc::clone(&faults));
    let router = Router::bind("127.0.0.1:0", &addrs, options).expect("bind router");

    let specs = mixed_sweep(16);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");
    let reference = sorted(reference_lines(&specs));
    assert_eq!(sorted(cluster_lines(&mut client, &specs)), reference);

    doomed.shutdown();
    wait_for("the breaker to open", Duration::from_secs(10), || {
        router.stats().backend_states[1] == CircuitState::Open
    });
    // Outage sweep so the donor holds state worth corrupting in transit.
    assert_eq!(sorted(cluster_lines(&mut client, &specs)), reference);

    let reborn = bind_backend();
    router.update_backend_addr(1, reborn.local_addr());
    wait_for("cold readmission", Duration::from_secs(10), || {
        let stats = router.stats();
        stats.backend_states[1] == CircuitState::Closed && stats.readmitted[1] >= 1
    });
    assert!(
        faults.injected() >= 1,
        "the garble must actually have fired"
    );
    let scrape = WireMetricsSnapshot::from(&router.metrics_snapshot());
    assert!(
        family_total(&scrape, "cluster_handoff_failed_total") >= 1,
        "the corrupted transfer must be counted as a failed handoff"
    );
    assert_eq!(family_total(&scrape, "cluster_handoff_restored_total"), 0);
    let rejoined = backend_scrape(reborn.local_addr());
    assert!(
        family_total(&rejoined, "server_restore_failed_total") >= 1,
        "the backend must have rejected the corrupt stream with a typed error"
    );
    assert_eq!(
        family_total(&rejoined, "server_restores_total"),
        0,
        "no corrupt entry may reach the caches"
    );

    // Not wedged: the cold backend still serves, recomputes organically,
    // and the sweep stays bit-identical.
    assert_eq!(sorted(cluster_lines(&mut client, &specs)), reference);

    router.shutdown();
    donor.shutdown();
    reborn.shutdown();
}

#[test]
fn hedged_requests_deliver_exactly_once_and_account_every_hedge() {
    let backends = [bind_backend(), bind_backend()];
    let addrs: Vec<SocketAddr> = backends.iter().map(Server::local_addr).collect();
    // A zero minimum delay makes the hedge race the primary outright —
    // the harshest test of the first-answer-wins claim.
    let hedge = HedgePolicy {
        enabled: true,
        p99_multiplier: 1.0,
        min_delay: Duration::ZERO,
        max_delay: Duration::from_millis(5),
    };
    let router = Router::bind(
        "127.0.0.1:0",
        &addrs,
        chaos_options().with_replication(2).with_hedge(hedge),
    )
    .expect("bind router");

    let specs = mixed_sweep(64);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");
    let served = cluster_lines(&mut client, &specs);
    assert_eq!(sorted(served), sorted(reference_lines(&specs)));

    // Exactly once: two attempts per request never inflate the answers.
    let stats = router.stats();
    assert_eq!(stats.evals_routed, 64);
    assert_eq!(stats.evals_ok, 64);
    assert_eq!(stats.evals_failed, 0);
    assert_eq!(stats.shed_total, 0);

    // Every launched hedge eventually resolves into the accounting
    // vocabulary (won, cancelled before I/O, or wasted after it).
    let launched = family_total(
        &WireMetricsSnapshot::from(&router.metrics_snapshot()),
        "cluster_hedges_launched_total",
    );
    assert!(launched >= 1, "hedges must actually have been launched");
    wait_for(
        "hedge accounting to settle",
        Duration::from_secs(10),
        || {
            let scrape = WireMetricsSnapshot::from(&router.metrics_snapshot());
            family_total(&scrape, "cluster_hedges_won_total")
                + family_total(&scrape, "cluster_hedges_cancelled_total")
                + family_total(&scrape, "cluster_hedges_wasted_total")
                >= launched
        },
    );

    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

#[test]
fn mid_frame_client_disconnects_leave_the_router_clean() {
    let backend = bind_backend();
    let router =
        Router::bind("127.0.0.1:0", &[backend.local_addr()], chaos_options()).expect("bind router");

    // A client that dies halfway through a request line: no answer is
    // owed, nothing leaks, nothing panics.
    {
        let mut stream = TcpStream::connect(router.local_addr()).expect("connect raw");
        let full = wire::encode_request(&Request {
            id: 1,
            body: RequestBody::Ping,
        });
        stream
            .write_all(&full.as_bytes()[..full.len() / 2])
            .expect("write half a frame");
        stream.flush().expect("flush the fragment");
    } // dropped mid-frame, no newline ever sent

    // A client that sends a full eval and vanishes before reading the
    // response: the router's reply send fails harmlessly.
    {
        let mut stream = TcpStream::connect(router.local_addr()).expect("connect raw");
        let line = wire::encode_request(&Request {
            id: 2,
            body: RequestBody::Eval(mixed_sweep(1)[0].clone()),
        });
        stream.write_all(line.as_bytes()).expect("write eval");
        stream.write_all(b"\n").expect("terminate eval");
        stream.flush().expect("flush eval");
    } // dropped with the response in flight

    // Every connection drains; the handle registry ends empty.
    wait_for(
        "router connections to drain",
        Duration::from_secs(10),
        || {
            let scrape = WireMetricsSnapshot::from(&router.metrics_snapshot());
            family_total(&scrape, "cluster_connections_active") == 0
                && family_total(&scrape, "cluster_connections_drained_total") >= 2
        },
    );

    // And the router still serves correctly afterwards.
    let specs = mixed_sweep(8);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");
    assert_eq!(
        sorted(cluster_lines(&mut client, &specs)),
        sorted(reference_lines(&specs))
    );

    router.shutdown();
    backend.shutdown();
}
