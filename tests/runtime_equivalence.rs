//! Acceptance test for the runtime subsystem, through the facade: a sweep of
//! all paper models across all four CrossLight variants through the
//! evaluation service with ≥4 workers must produce reports bit-identical to
//! serial `CrossLightSimulator` evaluation, with repeated traffic served
//! from the cache.

use crosslight::core::prelude::*;
use crosslight::runtime::prelude::*;

#[test]
fn four_worker_sweep_matches_serial_evaluation_bit_for_bit() {
    let requests = SweepPlanner::new()
        .variants(&CrossLightVariant::all())
        .plan()
        .expect("the paper sweep plans cleanly");
    assert_eq!(requests.len(), 16, "4 variants × 4 models");

    let serial: Vec<SimulationReport> = requests
        .iter()
        .map(|r| {
            CrossLightSimulator::new(r.config().expect("CrossLight request"))
                .evaluate(&r.workload)
                .expect("serial evaluation succeeds")
        })
        .collect();

    let service = EvalService::new(RuntimeOptions::default().with_workers(4));
    assert!(service.workers() >= 4);

    let first = service
        .submit_batch(requests.clone())
        .expect("batched evaluation succeeds");
    for (response, expected) in first.iter().zip(&serial) {
        assert_eq!(response.report, *expected, "batched ≠ serial");
    }

    // Replayed traffic: all hits, still bit-identical.
    let replay = service.submit_batch(requests).expect("replay succeeds");
    for (response, expected) in replay.iter().zip(&serial) {
        assert!(response.cache_hit);
        assert_eq!(response.report, *expected, "cached ≠ serial");
    }

    let stats = service.stats();
    assert_eq!(stats.completed, 32);
    assert_eq!(stats.cache_hits, 16);
    assert_eq!(stats.cached_entries, 16);
}

#[test]
fn experiment_ports_match_their_serial_twins_through_the_facade() {
    use crosslight::experiments::{fig6_design_space, table3_summary};

    let service = EvalService::new(RuntimeOptions::default().with_workers(4));

    let candidates = [(10, 100, 50, 30), (20, 150, 100, 60)];
    let serial_sweep = fig6_design_space::run(&candidates).expect("serial sweep runs");
    let runtime_sweep =
        fig6_design_space::run_on(&service, &candidates).expect("runtime sweep runs");
    assert_eq!(serial_sweep, runtime_sweep);

    let serial_table = table3_summary::run().expect("serial summary runs");
    let runtime_table = table3_summary::run_on(&service).expect("runtime summary runs");
    assert_eq!(serial_table, runtime_table);
}
