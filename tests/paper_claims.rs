//! Integration tests asserting the paper's numbered claims, one test per
//! claim, so `cargo test --test paper_claims` doubles as a reproduction
//! checklist.

use crosslight::core::prelude::*;
use crosslight::neural::zoo::PaperModel;
use crosslight::photonics::fpv::FpvModel;
use crosslight::photonics::mr::MrGeometry;
use crosslight::photonics::units::Nanometers;
use crosslight::tuning::hybrid::HybridTuner;

/// §IV.A: the 400/800 nm waveguide design reduces FPV-induced drift from
/// ~7.1 nm to ~2.1 nm — a ~70% reduction.
#[test]
fn claim_device_level_fpv_reduction() {
    let conventional = FpvModel::new(MrGeometry::conventional(), Default::default());
    let optimized = FpvModel::new(MrGeometry::optimized(), Default::default());
    let reduction =
        1.0 - optimized.worst_case_drift().value() / conventional.worst_case_drift().value();
    assert!((conventional.worst_case_drift().value() - 7.1).abs() < 0.8);
    assert!((optimized.worst_case_drift().value() - 2.1).abs() < 0.3);
    assert!((reduction - 0.70).abs() < 0.05);
}

/// §IV.B / Fig. 4: the TED-based tuning power has its minimum near 5 µm MR
/// spacing and is well below the non-TED power there.
#[test]
fn claim_circuit_level_ted_optimum() {
    use crosslight::experiments::fig4_crosstalk;
    let sweep = fig4_crosstalk::run(&fig4_crosstalk::paper_spacings());
    assert!((sweep.optimal_spacing_um - 5.0).abs() < 1.6);
    let at_optimum = sweep
        .rows
        .iter()
        .find(|r| (r.spacing_um - sweep.optimal_spacing_um).abs() < 1e-9)
        .expect("optimum row");
    assert!(at_optimum.ted_power_mw < 0.8 * at_optimum.naive_power_mw);
}

/// §V.B: with the optimized MRs and wavelength reuse, a 15-MR bank reaches
/// 16-bit resolution.
#[test]
fn claim_sixteen_bit_resolution() {
    let simulator = CrossLightSimulator::new(CrossLightVariant::OptTed.config());
    let workload = crosslight::neural::workload::NetworkWorkload::from_spec(
        &PaperModel::Lenet5SignMnist.spec(),
    )
    .expect("workload composes");
    assert_eq!(
        simulator
            .evaluate(&workload)
            .expect("simulates")
            .resolution_bits,
        16
    );
}

/// §IV.B: value imprinting is electro-optic — 20 ns latency and microwatt
/// power — while large FPV shifts fall back to the thermo-optic heater.
#[test]
fn claim_hybrid_tuning_behaviour() {
    let tuner = HybridTuner::paper();
    let value_shift = tuner.plan_shift(Nanometers::new(0.1));
    assert!(value_shift.is_electro_optic());
    assert!((value_shift.latency.to_nanos() - 20.0).abs() < 1e-9);
    assert!(value_shift.power.to_microwatts() < 1.0);
    let fpv_shift = tuner.plan_shift(Nanometers::new(2.1));
    assert!(!fpv_shift.is_electro_optic());
    assert!((fpv_shift.latency.to_micros() - 4.0).abs() < 1e-9);
}

/// Table I: the four evaluated models have the published layer counts and
/// parameter counts (within 1%).
#[test]
fn claim_table_i_models() {
    let expected = [
        (PaperModel::Lenet5SignMnist, 2, 2, 60_074usize),
        (PaperModel::CnnCifar10, 4, 2, 890_410),
        (PaperModel::CnnStl10, 7, 2, 3_204_080),
        (PaperModel::SiameseOmniglot, 8, 4, 38_951_745),
    ];
    for (model, conv, fc, params) in expected {
        let spec = model.spec();
        let (got_conv, got_fc) = spec.layer_counts();
        assert_eq!(got_conv, conv);
        assert_eq!(got_fc, fc);
        let rel = (spec.parameter_count() as f64 - params as f64).abs() / params as f64;
        assert!(
            rel < 0.01,
            "{model:?}: {} vs {params}",
            spec.parameter_count()
        );
    }
}

/// §V.C / Fig. 6: the configuration used for all comparisons is
/// (N, K, n, m) = (20, 150, 100, 60) and it fits the paper's area window.
#[test]
fn claim_best_configuration_dimensions_and_area() {
    let config = CrossLightConfig::paper_best();
    assert_eq!(
        (
            config.conv_unit_size,
            config.fc_unit_size,
            config.conv_units,
            config.fc_units
        ),
        (20, 150, 100, 60)
    );
    let area = crosslight::core::area::accelerator_area(&config)
        .total()
        .value();
    assert!((14.0..=26.0).contains(&area), "area {area} mm²");
}

/// Conclusion / Table III: CrossLight (opt_TED) achieves lower EPB and higher
/// performance-per-watt than the photonic state of the art, by factors of the
/// same order as the paper's 9.5× / 15.9× (HolyLight) and 1544× (DEAP-CNN).
#[test]
fn claim_headline_improvement_factors() {
    let summary = crosslight::experiments::table3_summary::run().expect("summary runs");
    assert!(summary.epb_improvement_vs_holylight > 3.0);
    assert!(summary.epb_improvement_vs_holylight < 40.0);
    assert!(summary.ppw_improvement_vs_holylight > 3.0);
    assert!(summary.ppw_improvement_vs_holylight < 60.0);
    assert!(summary.epb_improvement_vs_deap > 200.0);
}

/// Fig. 7: CrossLight's power sits below the CPUs, the GPU and both photonic
/// baselines, but above the edge electronic accelerators.
#[test]
fn claim_power_positioning() {
    let comparison = crosslight::experiments::fig7_power::run().expect("comparison runs");
    let p = |name: &str| comparison.power_of(name).expect(name);
    for heavier in ["DEAP_CNN", "Holylight", "P100", "IXP 9282", "AMD-TR"] {
        assert!(p("Cross_opt_TED") < p(heavier));
    }
    for lighter in ["Edge TPU", "Null Hop"] {
        assert!(p("Cross_opt_TED") > p(lighter));
    }
}
