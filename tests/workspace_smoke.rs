//! Workspace smoke test: the exact facade path advertised in the crate docs
//! must work end-to-end from a fresh checkout.
//!
//! This intentionally mirrors the `crosslight` crate-level doc example —
//! build the fully optimized CrossLight variant, evaluate a paper workload,
//! and get physically sensible numbers back — so the quickstart can never
//! drift from reality without CI noticing.

use crosslight::core::prelude::*;
use crosslight::neural::workload::NetworkWorkload;
use crosslight::neural::zoo::PaperModel;

#[test]
fn facade_quickstart_path_works_end_to_end() {
    let simulator = CrossLightSimulator::new(CrossLightVariant::OptTed.config());
    let workload = NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec())
        .expect("Table I workload spec is valid");
    let report = simulator.evaluate(&workload).expect("evaluation succeeds");

    assert_eq!(report.resolution_bits, 16, "paper: 16 bits at 15 MRs/bank");

    let fps = report.metrics.fps;
    assert!(
        fps.is_finite() && fps > 0.0,
        "FPS must be finite, got {fps}"
    );

    let watts = report.power.total_watts().value();
    assert!(
        watts.is_finite() && watts > 0.0,
        "total power must be finite, got {watts}"
    );

    let epb = report.metrics.energy_per_bit_pj;
    assert!(
        epb.is_finite() && epb > 0.0,
        "energy-per-bit must be finite, got {epb}"
    );
}

#[test]
fn every_paper_model_evaluates_on_every_variant() {
    for model in PaperModel::all() {
        let workload =
            NetworkWorkload::from_spec(&model.spec()).expect("Table I workload spec is valid");
        for variant in CrossLightVariant::all() {
            let report = CrossLightSimulator::new(variant.config())
                .evaluate(&workload)
                .expect("evaluation succeeds");
            assert!(
                report.metrics.fps.is_finite() && report.metrics.fps > 0.0,
                "{model:?} on {variant:?} produced non-finite FPS"
            );
            assert!(
                report.metrics.energy_per_bit_pj.is_finite(),
                "{model:?} on {variant:?} produced non-finite EPB"
            );
        }
    }
}
