//! Cross-crate integration tests: model → workload → accelerator simulation →
//! comparison, exercising the whole stack the way the paper's evaluation does.

use crosslight::baselines::accelerator::{CrossLightAccelerator, PhotonicAccelerator};
use crosslight::baselines::{DeapCnn, HolyLight};
use crosslight::core::prelude::*;
use crosslight::neural::workload::NetworkWorkload;
use crosslight::neural::zoo::PaperModel;

fn workloads() -> Vec<NetworkWorkload> {
    PaperModel::all()
        .iter()
        .map(|m| NetworkWorkload::from_spec(&m.spec()).expect("workload composes"))
        .collect()
}

#[test]
fn full_stack_simulation_for_every_table_i_model() {
    let simulator = CrossLightSimulator::new(CrossLightVariant::OptTed.config());
    for (model, workload) in PaperModel::all().iter().zip(workloads()) {
        let report = simulator.evaluate(&workload).expect("simulation succeeds");
        assert!(
            report.metrics.fps > 0.0 && report.metrics.fps.is_finite(),
            "{model:?} FPS"
        );
        assert!(report.metrics.energy_per_bit_pj > 0.0);
        assert!(report.power.total_watts().value() > 1.0);
        assert!(report.area.total().value() > 1.0);
        assert_eq!(report.resolution_bits, 16);
    }
}

#[test]
fn variant_ordering_holds_for_every_model() {
    // Fig. 8: Cross_opt_TED has the lowest EPB on every model, and the
    // variants are ordered by how much cross-layer optimization they apply.
    for workload in workloads() {
        let epb = |variant: CrossLightVariant| {
            CrossLightAccelerator::new(variant)
                .evaluate(&workload)
                .expect("evaluation succeeds")
                .energy_per_bit_pj
        };
        let base = epb(CrossLightVariant::Base);
        let base_ted = epb(CrossLightVariant::BaseTed);
        let opt = epb(CrossLightVariant::Opt);
        let opt_ted = epb(CrossLightVariant::OptTed);
        assert!(base > base_ted, "{}: {base} vs {base_ted}", workload.name);
        assert!(base > opt, "{}: {base} vs {opt}", workload.name);
        assert!(
            base_ted > opt_ted,
            "{}: {base_ted} vs {opt_ted}",
            workload.name
        );
        assert!(opt > opt_ted, "{}: {opt} vs {opt_ted}", workload.name);
    }
}

#[test]
fn headline_claims_hold_on_average() {
    // Conclusion of the paper: lower EPB and higher performance-per-watt than
    // the best prior photonic accelerator (HolyLight), and orders of magnitude
    // better than DEAP-CNN.
    let workloads = workloads();
    let crosslight = CrossLightAccelerator::new(CrossLightVariant::OptTed)
        .evaluate_average(&workloads)
        .expect("evaluation succeeds");
    let holylight = HolyLight::new()
        .evaluate_average(&workloads)
        .expect("evaluation succeeds");
    let deap = DeapCnn::new()
        .evaluate_average(&workloads)
        .expect("evaluation succeeds");

    assert!(crosslight.energy_per_bit_pj < holylight.energy_per_bit_pj / 3.0);
    assert!(crosslight.kfps_per_watt > holylight.kfps_per_watt * 3.0);
    assert!(crosslight.energy_per_bit_pj < deap.energy_per_bit_pj / 200.0);
    // All photonic accelerators sit inside the paper's area window (§V.D),
    // give or take the wide-spacing penalty DEAP pays.
    for report in [&crosslight, &holylight, &deap] {
        assert!(report.area_mm2 > 10.0 && report.area_mm2 < 40.0);
    }
}

#[test]
fn trained_surrogate_workloads_map_onto_the_accelerator() {
    use crosslight::neural::datasets::generate_synthetic;
    use crosslight::neural::train::{train, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Train a small surrogate, extract its workload from the live network
    // (not the spec), and run it through the simulator.
    let spec = PaperModel::Lenet5SignMnist.spec();
    let mut rng = StdRng::seed_from_u64(11);
    let mut surrogate = spec.build_surrogate(&mut rng).expect("surrogate builds");
    let dataset = generate_synthetic(&spec.surrogate_dataset(8), &mut rng).expect("dataset");
    let (train_split, _) = dataset.split(0.8);
    train(
        &mut surrogate,
        &train_split,
        &TrainConfig {
            epochs: 3,
            learning_rate: 0.05,
            batch_size: 8,
        },
    )
    .expect("training succeeds");

    let workload = NetworkWorkload::from_sequential(&surrogate).expect("workload extracts");
    assert!(!workload.conv_layers.is_empty());
    assert!(!workload.fc_layers.is_empty());
    let simulator = CrossLightSimulator::new(CrossLightConfig::paper_best());
    let report = simulator.evaluate(&workload).expect("simulation succeeds");
    assert!(report.metrics.fps > 0.0);
}

#[test]
fn experiment_harness_smoke_runs() {
    use crosslight::experiments::fig4_crosstalk;
    use crosslight::experiments::resolution_analysis;

    let sweep = fig4_crosstalk::run(&[2.0, 5.0, 10.0]);
    assert_eq!(sweep.rows.len(), 3);
    let analysis = resolution_analysis::run(16);
    assert_eq!(analysis.row_for(15).expect("row").crosslight_bits, 16);
}
