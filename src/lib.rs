//! # crosslight
//!
//! Facade crate for the CrossLight reproduction: a from-scratch Rust
//! implementation of **"CrossLight: A Cross-Layer Optimized Silicon Photonic
//! Neural Network Accelerator"** (Sunny, Mirza, Nikdast, Pasricha — DAC 2021),
//! including every substrate the paper relies on.
//!
//! The workspace is organised as one crate per subsystem; this facade simply
//! re-exports them under stable names so applications can depend on a single
//! crate:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`photonics`] | `crosslight-photonics` | MRs, microdisks, losses, laser power, FPV, thermal & spectral crosstalk |
//! | [`tuning`] | `crosslight-tuning` | EO/TO/hybrid tuning, thermal eigenmode decomposition |
//! | [`neural`] | `crosslight-neural` | tensors, layers, training, quantization, the Table I model zoo |
//! | [`core`] | `crosslight-core` | the CrossLight architecture: VDP units, power/area/latency models, simulator |
//! | [`runtime`] | `crosslight-runtime` | concurrent batched evaluation service: worker pool, result cache, sweep planner |
//! | [`server`] | `crosslight-server` | load-shedding TCP/JSON-lines front-end over the runtime, plus the reference client/loadgen |
//! | [`cluster`] | `crosslight-cluster` | fault-tolerant router over N servers: fingerprint sharding, health-checked failover, circuit breakers, fault injection |
//! | [`telemetry`] | `crosslight-telemetry` | lock-free metrics registry, Prometheus-style exposition, sampled request tracing |
//! | [`baselines`] | `crosslight-baselines` | DEAP-CNN, HolyLight, electronic platform references |
//! | [`experiments`] | `crosslight-experiments` | one module per paper figure/table |
//!
//! # Quickstart
//!
//! ```
//! use crosslight::core::prelude::*;
//! use crosslight::neural::workload::NetworkWorkload;
//! use crosslight::neural::zoo::PaperModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Evaluate the fully optimized CrossLight on LeNet-5 / Sign-MNIST.
//! let simulator = CrossLightSimulator::new(CrossLightVariant::OptTed.config());
//! let workload = NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec())?;
//! let report = simulator.evaluate(&workload)?;
//! assert_eq!(report.resolution_bits, 16);
//! println!(
//!     "LeNet-5 on CrossLight: {:.0} FPS, {:.2} W, {:.3} pJ/bit",
//!     report.metrics.fps,
//!     report.power.total_watts().value(),
//!     report.metrics.energy_per_bit_pj,
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use crosslight_baselines as baselines;
pub use crosslight_cluster as cluster;
pub use crosslight_core as core;
pub use crosslight_experiments as experiments;
pub use crosslight_neural as neural;
pub use crosslight_photonics as photonics;
pub use crosslight_runtime as runtime;
pub use crosslight_server as server;
pub use crosslight_telemetry as telemetry;
pub use crosslight_tuning as tuning;
