//! Device- and circuit-level walk-through: fabrication-process variation,
//! thermal crosstalk, and TED-based collective tuning (paper §IV.A–B,
//! Fig. 4).
//!
//! Run with:
//!
//! ```text
//! cargo run --example thermal_tuning
//! ```

use crosslight::experiments::{device_dse, fig4_crosstalk};
use crosslight::photonics::fpv::FpvModel;
use crosslight::photonics::mr::MrGeometry;
use crosslight::photonics::units::Nanometers;
use crosslight::tuning::hybrid::HybridTuner;

fn main() {
    println!("=== Section IV.A — MR design-space exploration under FPV ===\n");
    let dse = device_dse::run(20_000, 42);
    print!("{}", dse.table().render());
    println!(
        "\nworst-case drift: conventional {:.2} nm -> optimized {:.2} nm ({:.0}% reduction; paper: 7.1 -> 2.1 nm)",
        dse.conventional_drift_nm,
        dse.optimized_drift_nm,
        dse.reduction * 100.0
    );

    println!("\n=== Section IV.B — hybrid tuning decisions ===\n");
    let tuner = HybridTuner::paper();
    let fpv = FpvModel::new(MrGeometry::optimized(), Default::default());
    for shift in [
        Nanometers::new(0.05),
        Nanometers::new(0.3),
        fpv.mean_absolute_drift(),
        Nanometers::new(2.1),
    ] {
        let plan = tuner.plan_shift(shift);
        println!(
            "shift {:>6.2} nm -> {:?}: {:.4} mW, {:.1} ns",
            shift.value(),
            plan.mechanism,
            plan.power.value(),
            plan.latency.to_nanos()
        );
    }

    println!("\n=== Fig. 4 — crosstalk ratio and tuning power vs. MR spacing ===\n");
    let sweep = fig4_crosstalk::run(&fig4_crosstalk::paper_spacings());
    print!("{}", sweep.table().render());
    println!(
        "\noptimal spacing for TED collective tuning: {} um (paper: 5 um)",
        sweep.optimal_spacing_um
    );
}
