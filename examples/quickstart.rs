//! Quickstart: evaluate CrossLight on one model and print the headline
//! metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use crosslight::core::prelude::*;
use crosslight::neural::workload::NetworkWorkload;
use crosslight::neural::zoo::PaperModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("CrossLight quickstart — paper-best configuration, Cross_opt_TED variant\n");

    let simulator = CrossLightSimulator::new(CrossLightVariant::OptTed.config());
    println!(
        "architecture: N={}, K={}, n={}, m={} ({} MRs total)\n",
        simulator.config().conv_unit_size,
        simulator.config().fc_unit_size,
        simulator.config().conv_units,
        simulator.config().fc_units,
        simulator.config().total_mrs(),
    );

    println!(
        "{:<28} {:>12} {:>10} {:>14} {:>12}",
        "model", "FPS", "power (W)", "EPB (pJ/bit)", "kFPS/W"
    );
    for model in PaperModel::all() {
        let workload = NetworkWorkload::from_spec(&model.spec())?;
        let report = simulator.evaluate(&workload)?;
        println!(
            "{:<28} {:>12.1} {:>10.2} {:>14.4} {:>12.2}",
            model.spec().name,
            report.metrics.fps,
            report.power.total_watts().value(),
            report.metrics.energy_per_bit_pj,
            report.metrics.kfps_per_watt,
        );
    }

    println!(
        "\nachievable MR-bank resolution: {} bits (paper: 16 bits at 15 MRs per bank)",
        simulator
            .evaluate(&NetworkWorkload::from_spec(
                &PaperModel::Lenet5SignMnist.spec()
            )?)?
            .resolution_bits
    );
    Ok(())
}
