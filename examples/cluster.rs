//! Runs a loopback CrossLight cluster — three backend servers behind one
//! fingerprint-routing [`Router`] — and chaos-drives it: a seeded mixed
//! arch-zoo sweep while one backend is killed mid-flight and later
//! restarted on a fresh port.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cluster -- --requests 96 --workers 2
//! ```
//!
//! Four phases, each of which panics (non-zero exit, so CI uses this as
//! the cluster chaos smoke) if its invariant does not hold:
//!
//! 1. **Equivalence** — a mixed arch-zoo sweep through the router is
//!    multiset-bit-identical to direct in-process `EvalService` dispatch
//!    of the same specs.
//! 2. **Failover** — the sweep is replayed pipelined and one backend is
//!    killed with most of it outstanding: zero accepted requests are
//!    lost, the answers stay bit-identical, and the re-routing is
//!    observable (nonzero failovers, nonzero backend transport faults).
//! 3. **Readmission** — the killed backend restarts on a new ephemeral
//!    port and rejoins through half-open probing; a final sweep serves
//!    across all three backends again.
//! 4. **Degradation + drain** — with every backend gone, an eval is
//!    answered with a typed retryable `unavailable` frame within the
//!    deadline, and router shutdown completes with a client connected.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crosslight::cluster::{CircuitState, RetryPolicy, Router, RouterOptions};
use crosslight::experiments::arch_zoo;
use crosslight::neural::workload::NetworkWorkload;
use crosslight::neural::zoo::PaperModel;
use crosslight::runtime::prelude::*;
use crosslight::server::loadgen::{Client, ClientOptions};
use crosslight::server::server::{Server, ServerOptions};
use crosslight::server::wire::{
    self, ArchRequest, ErrorKind, EvalFrame, EvalSpec, Request, RequestBody, Response,
    ResponseBody, WorkloadRef,
};

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a non-negative integer, got `{v}`"))
        })
        .unwrap_or(default)
}

/// A deterministic mixed sweep: the arch-zoo union grid cycled across the
/// Table I models until `len` specs exist.
fn mixed_sweep(len: usize) -> Vec<EvalSpec> {
    let candidates = arch_zoo::union_candidates();
    let mut specs = Vec::with_capacity(len);
    'fill: loop {
        for candidate in &candidates {
            let arch = ArchRequest::for_spec(candidate).expect("union grid uses named variants");
            for model in PaperModel::all() {
                specs.push(EvalSpec::for_arch(arch.clone(), WorkloadRef::Model(model)));
                if specs.len() == len {
                    break 'fill;
                }
            }
        }
    }
    specs
}

/// Canonical byte encoding of an answered eval with serving metadata
/// (cache hit, worker index) normalized away: those legitimately differ
/// between one service and a cluster, the report must not.
fn canonical_line(id: u64, report: crosslight::core::simulator::SimulationReport) -> String {
    wire::encode_response(&Response {
        id: Some(id),
        body: ResponseBody::Eval(EvalFrame {
            report,
            cache_hit: false,
            worker: 0,
        }),
    })
}

fn reference_lines(specs: &[EvalSpec], workers: usize) -> Vec<String> {
    let workloads: [Arc<NetworkWorkload>; 4] = PaperModel::all()
        .map(|m| Arc::new(NetworkWorkload::from_spec(&m.spec()).expect("paper models are valid")));
    let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
    let requests = specs
        .iter()
        .enumerate()
        .map(|(id, spec)| {
            spec.to_eval_request(id as u64, &workloads)
                .expect("sweep specs are valid")
        })
        .collect();
    let mut lines: Vec<String> = service
        .submit_batch(requests)
        .expect("reference batch evaluates")
        .into_iter()
        .enumerate()
        .map(|(id, response)| canonical_line(id as u64, response.report))
        .collect();
    lines.sort_unstable();
    lines
}

/// Pipelines the sweep and returns the sorted canonical answers; `kill`
/// optionally shuts one backend down after `kill_after` answers arrived.
fn sweep_through(
    client: &mut Client,
    specs: &[EvalSpec],
    mut kill: Option<(Server, usize)>,
) -> Vec<String> {
    for (id, spec) in specs.iter().enumerate() {
        client
            .send(&Request {
                id: id as u64,
                body: RequestBody::Eval(spec.clone()),
            })
            .expect("pipelined send");
    }
    client.flush().expect("pipelined flush");
    let mut lines = Vec::with_capacity(specs.len());
    for received in 0..specs.len() {
        if let Some((_, kill_after)) = &kill {
            if received == *kill_after {
                let (victim, _) = kill.take().expect("kill pending");
                victim.shutdown();
            }
        }
        let response = client.recv().expect("every accepted request is answered");
        let id = response.id.expect("eval answers carry the request id");
        match response.body {
            ResponseBody::Eval(frame) => lines.push(canonical_line(id, frame.report)),
            other => panic!("id {id}: expected a report, got {other:?}"),
        }
    }
    lines.sort_unstable();
    lines
}

fn bind_backend(workers: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(workers)
            .with_trace_sampling(0),
    )
    .expect("bind a loopback backend")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let requests = parse_flag(&args, "--requests", 96).max(16);
    let workers = parse_flag(&args, "--workers", 2).max(1);

    println!("=== crosslight-cluster — fault-tolerant router over 3 backends ===\n");

    // ---- Topology ----------------------------------------------------------
    let mut backends: Vec<Option<Server>> = (0..3).map(|_| Some(bind_backend(workers))).collect();
    let addrs: Vec<SocketAddr> = backends
        .iter()
        .map(|b| b.as_ref().expect("live backend").local_addr())
        .collect();
    let options = RouterOptions::default()
        .with_replication(2)
        .with_failure_threshold(2)
        .with_health(
            Duration::from_millis(20),
            Duration::from_millis(250),
            Duration::from_millis(100),
        )
        .with_retry(RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5EED,
        })
        .with_retry_budget(1_000)
        .with_request_deadline(Duration::from_secs(30));
    let router = Router::bind("127.0.0.1:0", &addrs, options).expect("bind router");
    println!("router  : {}", router.local_addr());
    for (index, addr) in addrs.iter().enumerate() {
        println!("backend {index}: {addr} ({workers} eval workers)");
    }

    let specs = mixed_sweep(requests);
    let reference = reference_lines(&specs, workers);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");

    // ---- Phase 1: equivalence ----------------------------------------------
    let start = Instant::now();
    let served = sweep_through(&mut client, &specs, None);
    assert_eq!(
        served, reference,
        "cluster answers diverged from direct EvalService dispatch"
    );
    println!(
        "\nsweep   : {requests} mixed arch-zoo evals in {:.2?} — multiset-bit-identical to one EvalService",
        start.elapsed()
    );

    // ---- Phase 2: kill a backend mid-sweep ---------------------------------
    let before = router.stats();
    let victim = backends[1].take().expect("backend 1 is live");
    let served = sweep_through(&mut client, &specs, Some((victim, requests / 8)));
    assert_eq!(
        served, reference,
        "a mid-sweep backend kill must not change any answer"
    );
    let stats = router.stats();
    assert_eq!(
        stats.shed_total, before.shed_total,
        "no accepted request may be shed: {stats:?}"
    );
    assert!(
        stats.failovers > before.failovers,
        "the kill must force observable re-routing: {stats:?}"
    );
    println!(
        "failover: backend 1 killed mid-sweep — 0 lost, 0 shed, {} failovers, {} retries",
        stats.failovers - before.failovers,
        stats.retries - before.retries,
    );

    // ---- Phase 3: restart + readmission via half-open probing --------------
    // First let the prober notice the corpse and trip the breaker.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = router.stats();
        if stats.backend_states[1] != CircuitState::Closed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the prober never tripped the breaker on dead backend 1: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let reborn = bind_backend(workers);
    router.update_backend_addr(1, reborn.local_addr());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = router.stats();
        if stats.backend_states[1] == CircuitState::Closed && stats.readmitted[1] >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backend 1 was not readmitted: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    backends[1] = Some(reborn);
    let served = sweep_through(&mut client, &specs, None);
    assert_eq!(served, reference, "post-readmission answers diverged");
    println!(
        "readmit : backend 1 restarted on {} and readmitted through half-open probing",
        backends[1].as_ref().expect("reborn").local_addr()
    );

    let stats = router.stats();
    println!(
        "cluster : {} evals ok / {} routed, states {:?}",
        stats.evals_ok,
        stats.evals_routed,
        stats
            .backend_states
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );

    // ---- Phase 4: degradation + drain --------------------------------------
    for backend in backends.iter_mut() {
        if let Some(server) = backend.take() {
            server.shutdown();
        }
    }
    // A short-deadline router over the now-dead addresses: the eval must
    // come back as a typed retryable shed, promptly, never a hang.
    let short = Router::bind(
        "127.0.0.1:0",
        &addrs,
        RouterOptions::default().with_request_deadline(Duration::from_millis(1_500)),
    )
    .expect("bind short-deadline router");
    let mut probe = Client::connect_with(
        short.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(30)),
    )
    .expect("connect to short-deadline router");
    let spec = &specs[0];
    let start = Instant::now();
    let response = probe
        .eval(u64::MAX, spec)
        .expect("the shed is an answer, not a hang");
    let elapsed = start.elapsed();
    let ResponseBody::Error(frame) = response.body else {
        panic!("expected a typed shed with all backends down, got {response:?}");
    };
    assert_eq!(frame.kind, ErrorKind::Unavailable);
    assert!(frame.kind.retryable());
    assert!(
        elapsed < Duration::from_secs(15),
        "the shed must be bounded"
    );
    short.shutdown();
    println!("degrade : all backends down → typed retryable `unavailable` in {elapsed:.2?}");

    let total = router.stats();
    router.shutdown();
    drop(client);
    println!("drain   : router shutdown completed with a client connected\n");

    println!(
        "OK: {} routed, {} ok, {} failovers, {} retries, {} shed — every answer bit-identical.",
        total.evals_routed, total.evals_ok, total.failovers, total.retries, total.shed_total
    );
}
