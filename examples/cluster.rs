//! Runs a loopback CrossLight cluster — three backend servers behind one
//! fingerprint-routing [`Router`] — and chaos-drives it: a seeded mixed
//! arch-zoo sweep while one backend is killed mid-flight and later
//! restarted on a fresh port.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cluster -- --requests 96 --workers 2
//! ```
//!
//! Four phases, each of which panics (non-zero exit, so CI uses this as
//! the cluster chaos smoke) if its invariant does not hold:
//!
//! 1. **Equivalence** — a mixed arch-zoo sweep through the router is
//!    multiset-bit-identical to direct in-process `EvalService` dispatch
//!    of the same specs.
//! 2. **Failover** — the sweep is replayed pipelined and one backend is
//!    killed with most of it outstanding: zero accepted requests are
//!    lost, the answers stay bit-identical, and the re-routing is
//!    observable (nonzero failovers, nonzero backend transport faults).
//! 3. **Warm readmission** — the killed backend restarts on a new
//!    ephemeral port and rejoins through half-open probing *warm*: the
//!    prober hands its shards back from the surviving replicas before
//!    traffic returns (observable in `cluster_handoff_*`), the final
//!    sweep serves across all three backends again, and the reborn
//!    backend answers it with **zero** result-cache misses.  The
//!    cluster-wide metrics page is scraped through the router (hedge
//!    accounting included) and optionally dumped with
//!    `--dump-metrics <path>` for the CI scrape step.
//! 4. **Degradation + drain** — with every backend gone, an eval is
//!    answered with a typed retryable `unavailable` frame within the
//!    deadline, and router shutdown completes with a client connected.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crosslight::cluster::{CircuitState, HedgePolicy, RetryPolicy, Router, RouterOptions};
use crosslight::experiments::arch_zoo;
use crosslight::neural::workload::NetworkWorkload;
use crosslight::neural::zoo::PaperModel;
use crosslight::runtime::prelude::*;
use crosslight::server::loadgen::{Client, ClientOptions};
use crosslight::server::server::{Server, ServerOptions};
use crosslight::server::wire::{
    self, ArchRequest, ErrorKind, EvalFrame, EvalSpec, MetricsFormat, MetricsFrame, Request,
    RequestBody, Response, ResponseBody, WireMetricValue, WireMetricsSnapshot, WorkloadRef,
};
use crosslight::telemetry::validate_text;

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a non-negative integer, got `{v}`"))
        })
        .unwrap_or(default)
}

fn parse_path_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Sums a family's series across label sets (counter values, gauge
/// values, histogram counts) in a wire metrics snapshot.
fn family_total(snapshot: &WireMetricsSnapshot, name: &str) -> u64 {
    snapshot
        .families
        .iter()
        .filter(|family| family.name == name)
        .flat_map(|family| &family.series)
        .map(|series| match series.value {
            WireMetricValue::Counter(value) => value,
            WireMetricValue::Gauge(value) => value.max(0) as u64,
            WireMetricValue::Histogram(ref h) => h.count,
        })
        .sum()
}

/// One JSON metrics scrape of `addr` (a backend directly, or the router
/// for the merged cluster-wide page).
fn scrape_json(addr: SocketAddr) -> WireMetricsSnapshot {
    let mut client =
        Client::connect_with(addr, ClientOptions::with_deadline(Duration::from_secs(10)))
            .expect("connect for a metrics scrape");
    let response = client.metrics(0, MetricsFormat::Json).expect("metrics op");
    match response.body {
        ResponseBody::Metrics(MetricsFrame::Snapshot(snapshot)) => snapshot,
        other => panic!("expected a metrics snapshot, got {other:?}"),
    }
}

/// A deterministic mixed sweep: the arch-zoo union grid cycled across the
/// Table I models until `len` specs exist.
fn mixed_sweep(len: usize) -> Vec<EvalSpec> {
    let candidates = arch_zoo::union_candidates();
    let mut specs = Vec::with_capacity(len);
    'fill: loop {
        for candidate in &candidates {
            let arch = ArchRequest::for_spec(candidate).expect("union grid uses named variants");
            for model in PaperModel::all() {
                specs.push(EvalSpec::for_arch(arch.clone(), WorkloadRef::Model(model)));
                if specs.len() == len {
                    break 'fill;
                }
            }
        }
    }
    specs
}

/// Canonical byte encoding of an answered eval with serving metadata
/// (cache hit, worker index) normalized away: those legitimately differ
/// between one service and a cluster, the report must not.
fn canonical_line(id: u64, report: crosslight::core::simulator::SimulationReport) -> String {
    wire::encode_response(&Response {
        id: Some(id),
        body: ResponseBody::Eval(EvalFrame {
            report,
            cache_hit: false,
            worker: 0,
        }),
    })
}

fn reference_lines(specs: &[EvalSpec], workers: usize) -> Vec<String> {
    let workloads: [Arc<NetworkWorkload>; 4] = PaperModel::all()
        .map(|m| Arc::new(NetworkWorkload::from_spec(&m.spec()).expect("paper models are valid")));
    let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
    let requests = specs
        .iter()
        .enumerate()
        .map(|(id, spec)| {
            spec.to_eval_request(id as u64, &workloads)
                .expect("sweep specs are valid")
        })
        .collect();
    let mut lines: Vec<String> = service
        .submit_batch(requests)
        .expect("reference batch evaluates")
        .into_iter()
        .enumerate()
        .map(|(id, response)| canonical_line(id as u64, response.report))
        .collect();
    lines.sort_unstable();
    lines
}

/// Pipelines the sweep and returns the sorted canonical answers; `kill`
/// optionally shuts one backend down after `kill_after` answers arrived.
fn sweep_through(
    client: &mut Client,
    specs: &[EvalSpec],
    mut kill: Option<(Server, usize)>,
) -> Vec<String> {
    for (id, spec) in specs.iter().enumerate() {
        client
            .send(&Request {
                id: id as u64,
                body: RequestBody::Eval(spec.clone()),
            })
            .expect("pipelined send");
    }
    client.flush().expect("pipelined flush");
    let mut lines = Vec::with_capacity(specs.len());
    for received in 0..specs.len() {
        if let Some((_, kill_after)) = &kill {
            if received == *kill_after {
                let (victim, _) = kill.take().expect("kill pending");
                victim.shutdown();
            }
        }
        let response = client.recv().expect("every accepted request is answered");
        let id = response.id.expect("eval answers carry the request id");
        match response.body {
            ResponseBody::Eval(frame) => lines.push(canonical_line(id, frame.report)),
            other => panic!("id {id}: expected a report, got {other:?}"),
        }
    }
    lines.sort_unstable();
    lines
}

fn bind_backend(workers: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(workers)
            .with_trace_sampling(0),
    )
    .expect("bind a loopback backend")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let requests = parse_flag(&args, "--requests", 96).max(16);
    let workers = parse_flag(&args, "--workers", 2).max(1);
    let dump_metrics = parse_path_flag(&args, "--dump-metrics");

    println!("=== crosslight-cluster — fault-tolerant router over 3 backends ===\n");

    // ---- Topology ----------------------------------------------------------
    let mut backends: Vec<Option<Server>> = (0..3).map(|_| Some(bind_backend(workers))).collect();
    let addrs: Vec<SocketAddr> = backends
        .iter()
        .map(|b| b.as_ref().expect("live backend").local_addr())
        .collect();
    let options = RouterOptions::default()
        .with_replication(2)
        .with_failure_threshold(2)
        .with_health(
            Duration::from_millis(20),
            Duration::from_millis(250),
            Duration::from_millis(100),
        )
        .with_retry(RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5EED,
        })
        .with_retry_budget(1_000)
        .with_request_deadline(Duration::from_secs(30))
        // Speculative second attempts on the other replica once a forward
        // outlives the observed p99 — accounting shows up in the scrape.
        .with_hedge(HedgePolicy::enabled());
    let router = Router::bind("127.0.0.1:0", &addrs, options).expect("bind router");
    println!("router  : {}", router.local_addr());
    for (index, addr) in addrs.iter().enumerate() {
        println!("backend {index}: {addr} ({workers} eval workers)");
    }

    let specs = mixed_sweep(requests);
    let reference = reference_lines(&specs, workers);
    let mut client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(60)),
    )
    .expect("connect to router");

    // ---- Phase 1: equivalence ----------------------------------------------
    let start = Instant::now();
    let served = sweep_through(&mut client, &specs, None);
    assert_eq!(
        served, reference,
        "cluster answers diverged from direct EvalService dispatch"
    );
    println!(
        "\nsweep   : {requests} mixed arch-zoo evals in {:.2?} — multiset-bit-identical to one EvalService",
        start.elapsed()
    );

    // ---- Phase 2: kill a backend mid-sweep ---------------------------------
    let before = router.stats();
    let victim = backends[1].take().expect("backend 1 is live");
    let served = sweep_through(&mut client, &specs, Some((victim, requests / 8)));
    assert_eq!(
        served, reference,
        "a mid-sweep backend kill must not change any answer"
    );
    let stats = router.stats();
    assert_eq!(
        stats.shed_total, before.shed_total,
        "no accepted request may be shed: {stats:?}"
    );
    assert!(
        stats.failovers > before.failovers,
        "the kill must force observable re-routing: {stats:?}"
    );
    println!(
        "failover: backend 1 killed mid-sweep — 0 lost, 0 shed, {} failovers, {} retries",
        stats.failovers - before.failovers,
        stats.retries - before.retries,
    );

    // ---- Phase 3: restart + warm readmission via half-open probing ---------
    // First let the prober notice the corpse and trip the breaker.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = router.stats();
        if stats.backend_states[1] != CircuitState::Closed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the prober never tripped the breaker on dead backend 1: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Serve a full sweep through the outage: the breaker is open, so every
    // one of backend 1's shards is computed (and cached) on a surviving
    // replica — the warm state the handoff below will pull from.  Results
    // that lived only on the corpse are genuinely lost with it; this is
    // the donors re-earning them.
    let served = sweep_through(&mut client, &specs, None);
    assert_eq!(served, reference, "open-breaker answers diverged");
    println!("outage  : full sweep served bit-identically with backend 1's breaker open");
    let reborn = bind_backend(workers);
    router.update_backend_addr(1, reborn.local_addr());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = router.stats();
        if stats.backend_states[1] == CircuitState::Closed && stats.readmitted[1] >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backend 1 was not readmitted: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let reborn_addr = reborn.local_addr();
    backends[1] = Some(reborn);

    // The readmission must have been *warm*: the prober pulled backend 1's
    // shards from the surviving replicas and restored them before closing
    // the breaker.
    let router_scrape = scrape_json(router.local_addr());
    assert!(
        family_total(&router_scrape, "cluster_handoff_restored_total") >= 1,
        "readmission did not run a warm handoff"
    );
    let handed_over = family_total(&router_scrape, "cluster_handoff_entries_total");
    assert!(handed_over >= 1, "the handoff moved no entries");
    assert_eq!(
        family_total(&router_scrape, "cluster_handoff_failed_total"),
        0,
        "a healthy-donor handoff must not fail"
    );

    let served = sweep_through(&mut client, &specs, None);
    assert_eq!(served, reference, "post-readmission answers diverged");
    // The handed-off shards serve from cache: the reborn backend answered
    // its slice of the final sweep without a single result-cache miss.
    let reborn_scrape = scrape_json(reborn_addr);
    assert!(
        family_total(&reborn_scrape, "server_restores_total") >= 1,
        "the reborn backend accepted no restore stream"
    );
    assert!(
        family_total(&reborn_scrape, "runtime_result_cache_hits_total") >= 1,
        "the reborn backend served none of the final sweep"
    );
    assert_eq!(
        family_total(&reborn_scrape, "runtime_result_cache_misses_total"),
        0,
        "a warm-readmitted backend must not recompute its shards"
    );
    println!(
        "readmit : backend 1 restarted on {reborn_addr} and readmitted WARM — \
         {handed_over} cache entries handed back, 0 cold misses on the final sweep"
    );

    let stats = router.stats();
    println!(
        "cluster : {} evals ok / {} routed, states {:?}",
        stats.evals_ok,
        stats.evals_routed,
        stats
            .backend_states
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );

    // The router's metrics op serves the whole cluster: its own cluster_*
    // families merged with the aggregated scrapes of every closed backend.
    let mut metrics_client = Client::connect_with(
        router.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(10)),
    )
    .expect("connect for the text scrape");
    let response = metrics_client
        .metrics(1, MetricsFormat::Text)
        .expect("text metrics op");
    let ResponseBody::Metrics(MetricsFrame::Text(page)) = response.body else {
        panic!("metrics text endpoint returned an unexpected frame");
    };
    validate_text(&page).expect("the cluster-wide exposition page validates");
    for family in [
        "cluster_handoff_restored_total",
        "cluster_hedges_launched_total",
        "server_restores_total",
        "runtime_result_cache_hits_total",
    ] {
        assert!(
            page.contains(family),
            "cluster-wide scrape is missing `{family}`"
        );
    }
    if let Some(path) = &dump_metrics {
        std::fs::write(path, &page).expect("write the dumped metrics page");
        println!("metrics : dumped {} exposition bytes to {path}", page.len());
    }

    // ---- Phase 4: degradation + drain --------------------------------------
    for backend in backends.iter_mut() {
        if let Some(server) = backend.take() {
            server.shutdown();
        }
    }
    // A short-deadline router over the now-dead addresses: the eval must
    // come back as a typed retryable shed, promptly, never a hang.
    let short = Router::bind(
        "127.0.0.1:0",
        &addrs,
        RouterOptions::default().with_request_deadline(Duration::from_millis(1_500)),
    )
    .expect("bind short-deadline router");
    let mut probe = Client::connect_with(
        short.local_addr(),
        ClientOptions::with_deadline(Duration::from_secs(30)),
    )
    .expect("connect to short-deadline router");
    let spec = &specs[0];
    let start = Instant::now();
    let response = probe
        .eval(u64::MAX, spec)
        .expect("the shed is an answer, not a hang");
    let elapsed = start.elapsed();
    let ResponseBody::Error(frame) = response.body else {
        panic!("expected a typed shed with all backends down, got {response:?}");
    };
    assert_eq!(frame.kind, ErrorKind::Unavailable);
    assert!(frame.kind.retryable());
    assert!(
        elapsed < Duration::from_secs(15),
        "the shed must be bounded"
    );
    short.shutdown();
    println!("degrade : all backends down → typed retryable `unavailable` in {elapsed:.2?}");

    let total = router.stats();
    router.shutdown();
    drop(client);
    println!("drain   : router shutdown completed with a client connected\n");

    println!(
        "OK: {} routed, {} ok, {} failovers, {} retries, {} shed — every answer bit-identical.",
        total.evals_routed, total.evals_ok, total.failovers, total.retries, total.shed_total
    );
}
