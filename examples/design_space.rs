//! Reproduces the Fig. 6 architecture design-space exploration: sweeping
//! (N, K, n, m) and reporting FPS vs. EPB vs. area.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use crosslight::experiments::fig6_design_space::{self, AREA_CAP_MM2};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 6 — FPS vs. EPB vs. area design-space exploration ===\n");
    let sweep = fig6_design_space::run(&fig6_design_space::paper_candidates())?;
    print!("{}", sweep.table().render());

    println!(
        "\n{} of {} candidates satisfy the {:.0} mm² area constraint",
        sweep.points.iter().filter(|p| p.within_area_cap).count(),
        sweep.points.len(),
        AREA_CAP_MM2
    );
    println!(
        "best in-cap configuration by FPS/EPB: (N, K, n, m) = ({}, {}, {}, {})",
        sweep.best.conv_unit_size,
        sweep.best.fc_unit_size,
        sweep.best.conv_units,
        sweep.best.fc_units
    );
    if let Some(paper) = sweep.paper_point {
        println!(
            "paper's published best (20, 150, 100, 60): {:.1} FPS, {:.4} pJ/bit, {:.1} mm²",
            paper.avg_fps, paper.avg_epb_pj, paper.area_mm2
        );
    }
    Ok(())
}
