//! Reproduces the Fig. 6 architecture design-space exploration: sweeping
//! (N, K, n, m) and reporting FPS vs. EPB vs. area.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space                    # paper grid, serial
//! cargo run --release --example design_space -- --workers 4     # parallel sweep
//! cargo run --release --example design_space -- --dense         # ~58.5k-candidate
//!                                                               # streaming sweep
//! cargo run --release --example design_space -- --dense --workers 4 --top 10
//! ```
//!
//! The parallel sweep is byte-identical to the serial one (deterministic
//! chunking over one shared `ModelCache`); `--dense` switches to the
//! streaming top-K/Pareto sweep, which never materializes its per-candidate
//! points.

use crosslight::experiments::fig6_design_space::{self, AREA_CAP_MM2};

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = flag_value(&args, "--workers").unwrap_or(1);
    let top_k = flag_value(&args, "--top").unwrap_or(5);
    let dense = args.iter().any(|a| a == "--dense");

    if dense {
        println!("=== Fig. 6 — dense streaming design-space exploration ===\n");
        let candidates = fig6_design_space::dense_candidates();
        let start = std::time::Instant::now();
        let frontier = fig6_design_space::run_streaming(&candidates, workers, top_k)?;
        let elapsed = start.elapsed();
        println!("top {top_k} in-cap candidates by FPS/EPB:");
        print!("{}", frontier.table().render());
        println!(
            "\n{} candidates evaluated in {:.2?} ({} workers); {} satisfy the {:.0} mm² \
             area constraint; {} points on the FPS/EPB/area Pareto frontier",
            frontier.evaluated,
            elapsed,
            workers.max(1),
            frontier.in_cap,
            AREA_CAP_MM2,
            frontier.pareto.len()
        );
        if let Some(best) = frontier.best {
            println!(
                "best in-cap configuration by FPS/EPB: (N, K, n, m) = ({}, {}, {}, {})",
                best.conv_unit_size, best.fc_unit_size, best.conv_units, best.fc_units
            );
        }
        if let Some(paper) = frontier.paper_point {
            println!(
                "paper's published best (20, 150, 100, 60): {:.1} FPS, {:.4} pJ/bit, {:.1} mm²",
                paper.avg_fps, paper.avg_epb_pj, paper.area_mm2
            );
        }
        return Ok(());
    }

    println!("=== Fig. 6 — FPS vs. EPB vs. area design-space exploration ===\n");
    let candidates = fig6_design_space::paper_candidates();
    let sweep = if workers > 1 {
        fig6_design_space::run_parallel(&candidates, workers)?
    } else {
        fig6_design_space::run(&candidates)?
    };
    print!("{}", sweep.table().render());

    println!(
        "\n{} of {} candidates satisfy the {:.0} mm² area constraint",
        sweep.points.iter().filter(|p| p.within_area_cap).count(),
        sweep.points.len(),
        AREA_CAP_MM2
    );
    println!(
        "best in-cap configuration by FPS/EPB: (N, K, n, m) = ({}, {}, {}, {})",
        sweep.best.conv_unit_size,
        sweep.best.fc_unit_size,
        sweep.best.conv_units,
        sweep.best.fc_units
    );
    if let Some(paper) = sweep.paper_point {
        println!(
            "paper's published best (20, 150, 100, 60): {:.1} FPS, {:.4} pJ/bit, {:.1} mm²",
            paper.avg_fps, paper.avg_epb_pj, paper.area_mm2
        );
    }
    Ok(())
}
