//! Cross-architecture design-space exploration over the accelerator zoo:
//! evaluates the union grid — CrossLight variants × dimensions ×
//! resolutions, HolyLight, DEAP-CNN, the symmetric MRR crossbar, LiteCON
//! and the electronic reference platforms — and prints the Table-III-style
//! comparison plus the top-K / Pareto frontier under a power budget.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example arch_zoo -- --workers 4 --budget 25
//! ```
//!
//! The process exits non-zero (panics) if the streaming frontier differs
//! across worker counts or from the runtime-service evaluation, so CI can
//! use it as a smoke test of the architecture-generic API.

use crosslight::experiments::arch_zoo;
use crosslight::runtime::pool::{EvalService, RuntimeOptions};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a number, got `{v}`"))
        })
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let workers: usize = parse_flag(&args, "--workers", 4).max(1);
    let budget: f64 = parse_flag(&args, "--budget", arch_zoo::DEFAULT_POWER_BUDGET_W);

    println!("=== crosslight — cross-architecture design-space exploration ===\n");

    println!("-- backend-family defaults (Table-III style) --");
    println!("{}", arch_zoo::table()?.render());

    let candidates = arch_zoo::union_candidates();
    println!(
        "-- union grid: {} candidates, top-8 under a {budget} W budget --",
        candidates.len()
    );
    let frontier = arch_zoo::run_streaming(&candidates, workers, 8, budget)?;
    println!("{}", frontier.table().render());
    println!(
        "evaluated {} candidates, {} in budget, {} on the (FPS, EPB, power) Pareto frontier",
        frontier.evaluated,
        frontier.in_budget,
        frontier.pareto.len()
    );
    if let Some(best) = &frontier.best {
        println!(
            "best in budget: {} ({:.1} FPS/EPB at {:.2} W)",
            best.label, best.fps_per_epb, best.power_w
        );
    }

    // Determinism or bust: the frontier is identical for any worker count
    // and identical when served by the runtime evaluation service.
    let serial = arch_zoo::run_streaming(&candidates, 1, 8, budget)?;
    assert_eq!(serial, frontier, "frontier must not depend on worker count");
    let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
    let batched = arch_zoo::run_on(&service, &candidates, 8, budget)?;
    assert_eq!(serial, batched, "runtime-served frontier must match");

    println!("\nOK: frontier identical across worker counts and through the runtime service.");
    Ok(())
}
