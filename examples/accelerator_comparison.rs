//! Reproduces the paper's headline comparison (Fig. 7, Fig. 8 and Table III):
//! the four CrossLight variants against DEAP-CNN, HolyLight and the
//! electronic platforms.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example accelerator_comparison
//! ```

use crosslight::experiments::{fig7_power, fig8_epb, table3_summary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 7 — power consumption comparison ===\n");
    let power = fig7_power::run()?;
    print!("{}", power.table().render());

    println!("\n=== Fig. 8 — per-model EPB (pJ/bit) of the photonic accelerators ===\n");
    let epb = fig8_epb::run()?;
    print!("{}", epb.table().render());

    println!("\n=== Table III — average EPB and kFPS/W ===\n");
    let summary = table3_summary::run()?;
    print!("{}", summary.table().render());

    println!(
        "\nCross_opt_TED vs Holylight : {:.1}x lower EPB, {:.1}x higher kFPS/W (paper: 9.5x / 15.9x)",
        summary.epb_improvement_vs_holylight, summary.ppw_improvement_vs_holylight
    );
    println!(
        "Cross_opt_TED vs DEAP-CNN  : {:.0}x lower EPB (paper: 1544x)",
        summary.epb_improvement_vs_deap
    );
    Ok(())
}
