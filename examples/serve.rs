//! Serves the CrossLight evaluation runtime over TCP/JSON-lines and drives
//! it with the in-crate load generator — the end-to-end smoke of the
//! `crosslight::server` stack.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve -- --port 0 --workers 4 --clients 4 --requests 64
//! ```
//!
//! Three phases, each of which panics (non-zero exit, so CI can use this as
//! a smoke test) if its invariant does not hold:
//!
//! 1. **Equivalence** — a mixed paper-scenario load is replayed twice over
//!    `--clients` concurrent connections; every wire response must be
//!    bit-identical to direct in-process `EvalService` dispatch of the same
//!    scenario, and the second (cache-warm) pass must hit the cache.
//! 2. **Telemetry** — the `metrics` wire op is scraped in all three formats
//!    (JSON snapshot, Prometheus-style text, trace spans); the per-phase
//!    latency breakdown must be complete and internally consistent with the
//!    end-to-end histogram, and `--dump-metrics <path>` writes the text page
//!    for external validation (the CI scrape step).
//! 3. **Overload** — the same mix is fired at a capacity-1 server; the
//!    overload path must observably shed with typed `overloaded` frames
//!    while still answering every request exactly once.
//! 4. **Drain** — shutdown with clients connected must complete without
//!    hanging (the process exiting is the proof).

use std::collections::HashMap;
use std::sync::Arc;

use crosslight::core::simulator::SimulationReport;
use crosslight::neural::workload::NetworkWorkload;
use crosslight::neural::zoo::PaperModel;
use crosslight::runtime::prelude::*;
use crosslight::server::loadgen::{self, Client, LoadGenOptions};
use crosslight::server::server::{Server, ServerOptions};
use crosslight::server::wire::{EvalSpec, MetricsFormat, MetricsFrame, ResponseBody, WorkloadRef};
use crosslight::telemetry::{
    validate_text, HistogramSnapshot, Phase, RegistrySnapshot, SeriesValue,
};

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a non-negative integer, got `{v}`"))
        })
        .unwrap_or(default)
}

fn parse_path_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The labeled `server_phase_ns` series of one phase.
fn phase_histogram(scrape: &RegistrySnapshot, phase: Phase) -> &HistogramSnapshot {
    let family = scrape
        .family("server_phase_ns")
        .expect("the scrape carries server_phase_ns");
    let series = family
        .series
        .iter()
        .find(|s| {
            s.labels
                .iter()
                .any(|(k, v)| k == "phase" && v == phase.as_str())
        })
        .unwrap_or_else(|| panic!("server_phase_ns has no series for phase {}", phase.as_str()));
    match &series.value {
        SeriesValue::Histogram(h) => h,
        other => panic!("server_phase_ns is not a histogram: {other:?}"),
    }
}

fn counter_value(scrape: &RegistrySnapshot, name: &str) -> u64 {
    match scrape.value(name) {
        Some(SeriesValue::Counter(v)) => *v,
        other => panic!("{name} is not a scraped counter: {other:?}"),
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Direct in-process dispatch of every distinct scenario of the mix, used
/// as the ground truth the wire responses must reproduce bit-for-bit.
fn direct_reports(
    options: &LoadGenOptions,
    service: &EvalService,
) -> HashMap<u64, SimulationReport> {
    let workloads: [Arc<NetworkWorkload>; 4] = PaperModel::all()
        .map(|m| Arc::new(NetworkWorkload::from_spec(&m.spec()).expect("paper models are valid")));
    let mut by_id = HashMap::new();
    for client in 0..options.clients {
        for (index, spec) in options.client_specs(client).into_iter().enumerate() {
            let request = spec
                .to_eval_request(options.request_id(client, index), &workloads)
                .expect("mix scenarios are valid");
            let response = service.submit(request).expect("direct dispatch succeeds");
            by_id.insert(options.request_id(client, index), response.report);
        }
    }
    by_id
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let port = parse_flag(&args, "--port", 0);
    let workers = parse_flag(&args, "--workers", 4).max(1);
    let clients = parse_flag(&args, "--clients", 4).max(1);
    let requests = parse_flag(&args, "--requests", 64).max(1);
    let dump_metrics = parse_path_flag(&args, "--dump-metrics");

    println!("=== crosslight-server — TCP/JSON-lines front-end over the runtime ===\n");

    // ---- Phase 1: serve + prove equivalence --------------------------------
    let server = Server::bind(
        format!("127.0.0.1:{port}"),
        ServerOptions::default()
            .with_workers(workers)
            .with_queue_capacity(16 * 1024),
    )?;
    let addr = server.local_addr();
    println!("listening on {addr} ({workers} eval workers)");

    let options = LoadGenOptions::paper_mix(clients, requests, 0x5EED);
    let direct_service = EvalService::new(RuntimeOptions::default().with_workers(workers));
    let expected = direct_reports(&options, &direct_service);

    let mut warm_rps = 0.0;
    for pass in 0..2 {
        let report = loadgen::run(addr, &options)?;
        assert_eq!(report.ok, report.sent, "no request may fail: {report:?}");
        assert_eq!(report.shed, 0, "nothing may be shed below capacity");
        for (id, response) in &report.responses {
            let ResponseBody::Eval(frame) = &response.body else {
                panic!("id {id}: unexpected response {response:?}");
            };
            assert_eq!(
                frame.report, expected[id],
                "id {id}: wire response diverged from direct EvalService dispatch"
            );
        }
        let label = if pass == 0 { "cold" } else { "warm" };
        println!(
            "pass {label}: {} requests over {} connections in {:.2?}  ({:>8.0} req/s)  \
             client latency p50 {:.2} ms / p99 {:.2} ms",
            report.sent,
            options.clients,
            report.elapsed,
            report.throughput_rps(),
            ms(report.latency.p50()),
            ms(report.latency.p99()),
        );
        warm_rps = report.throughput_rps();
    }
    let stats = server.stats();
    assert!(
        stats.runtime.cache_hits > 0,
        "the warm pass must hit the cache"
    );
    println!(
        "cache   : {} hits / {} misses ({:.0}% hit rate), {} prepared configs",
        stats.runtime.cache_hits,
        stats.runtime.cache_misses,
        stats.runtime.hit_rate() * 100.0,
        stats.runtime.prepared_configs
    );
    println!(
        "server  : {} frames, {} evals ok, shed {}, malformed {}",
        stats.server.requests_total,
        stats.server.evals_ok,
        stats.server.shed_total,
        stats.server.malformed_total
    );
    println!("OK: every wire response bit-identical to direct EvalService dispatch.\n");

    // A stats request over the wire itself.
    let mut probe = Client::connect(addr)?;
    let stats_frame = probe.stats(0)?;
    let ResponseBody::Stats(wire_stats) = &stats_frame.body else {
        panic!("stats endpoint returned {stats_frame:?}");
    };
    println!(
        "wire stats: queue {}/{} in flight, per-worker {:?}, queue depths {:?}\n",
        wire_stats.server.in_flight,
        wire_stats.server.queue_capacity,
        wire_stats.runtime.per_worker,
        wire_stats.runtime.queue_depths
    );

    // ---- Phase 2: scrape the telemetry surface over the wire ---------------
    // Traces fold into the histograms *after* their response line is
    // flushed, so a scrape racing the tail of the load can briefly see a
    // sampled trace whose end-to-end sample is not folded yet.  Re-scrape
    // until the registry quiesces (every sampled trace folded), bounded.
    let scrape = {
        let mut scrape_id = 100;
        loop {
            let response = probe.metrics(scrape_id, MetricsFormat::Json)?;
            let ResponseBody::Metrics(MetricsFrame::Snapshot(wire_snapshot)) = &response.body
            else {
                panic!("metrics endpoint returned {response:?}");
            };
            let scrape = wire_snapshot.to_registry_snapshot();
            let sampled = counter_value(&scrape, "server_traces_sampled_total");
            let folded = match scrape.value("server_request_ns") {
                Some(SeriesValue::Histogram(h)) => h.count(),
                other => panic!("server_request_ns is not a scraped histogram: {other:?}"),
            };
            if folded == sampled || scrape_id >= 140 {
                assert_eq!(
                    folded, sampled,
                    "traced requests never finished folding into the registry"
                );
                break scrape;
            }
            scrape_id += 1;
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    };

    // Every family of the documented vocabulary must be present in one
    // merged scrape — server front-end and runtime pool alike.
    for family in [
        "server_requests_total",
        "server_evals_ok_total",
        "server_evals_failed_total",
        "server_shed_total",
        "server_malformed_total",
        "server_oversized_total",
        "server_connections_accepted_total",
        "server_connections_active",
        "server_connections_drained_total",
        "server_bytes_read_total",
        "server_bytes_written_total",
        "server_write_queue_depth",
        "server_admission_in_flight",
        "server_admission_capacity",
        "server_phase_ns",
        "server_request_ns",
        "server_traces_sampled_total",
        "server_trace_spans_dropped_total",
        "runtime_submitted_total",
        "runtime_completed_total",
        "runtime_queue_wait_ns",
        "runtime_cache_lookup_ns",
        "runtime_prepare_ns",
        "runtime_evaluate_ns",
        "runtime_result_cache_hits_total",
        "runtime_result_cache_misses_total",
        "runtime_workers",
    ] {
        assert!(
            scrape.family(family).is_some(),
            "scrape is missing required family {family}"
        );
    }

    // The per-phase latency breakdown, as a table.
    let e2e = match scrape.value("server_request_ns") {
        Some(SeriesValue::Histogram(h)) => h.clone(),
        other => panic!("server_request_ns is not a scraped histogram: {other:?}"),
    };
    println!("per-phase latency of {} traced requests (ms):", e2e.count());
    println!(
        "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "p50", "p90", "p99", "mean"
    );
    let mut phase_sum_ns = 0u64;
    for phase in Phase::ALL {
        let h = phase_histogram(&scrape, phase);
        println!(
            "  {:<12} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            phase.as_str(),
            h.count(),
            ms(h.p50()),
            ms(h.p90()),
            ms(h.p99()),
            h.mean() / 1e6,
        );
        // `read` spans wait on the client between requests, so the
        // end-to-end window deliberately starts at `decode`.
        if phase != Phase::Read {
            phase_sum_ns += h.sum();
        }
    }
    println!(
        "  {:<12} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
        "end_to_end",
        e2e.count(),
        ms(e2e.p50()),
        ms(e2e.p90()),
        ms(e2e.p99()),
        e2e.mean() / 1e6,
    );

    // Consistency of the breakdown with the end-to-end histogram: the
    // phases after `read` are disjoint sub-intervals of each request's
    // decode-to-flush window, so their summed time cannot exceed the
    // summed end-to-end time, and every traced request contributes
    // exactly one decode span and one end-to-end sample.
    assert!(e2e.count() > 0, "the load must produce traced requests");
    assert_eq!(phase_histogram(&scrape, Phase::Decode).count(), e2e.count());
    assert_eq!(
        phase_histogram(&scrape, Phase::CacheLookup).count(),
        e2e.count(),
        "every traced eval passes the cache lookup exactly once"
    );
    // `prepare`/`evaluate` run only on cache misses, so their counts match
    // each other and never exceed the traced-request count.
    assert_eq!(
        phase_histogram(&scrape, Phase::Prepare).count(),
        phase_histogram(&scrape, Phase::Evaluate).count(),
        "every traced miss is prepared and evaluated exactly once"
    );
    assert!(phase_histogram(&scrape, Phase::Evaluate).count() <= e2e.count());
    assert!(
        phase_sum_ns <= e2e.sum(),
        "per-phase time ({phase_sum_ns} ns) exceeds end-to-end time ({} ns)",
        e2e.sum()
    );
    // Ordered-read discipline holds in the scrape too.
    assert!(
        counter_value(&scrape, "runtime_submitted_total")
            >= counter_value(&scrape, "runtime_completed_total"),
        "runtime counters must satisfy submitted >= completed"
    );
    assert!(
        counter_value(&scrape, "server_requests_total")
            >= counter_value(&scrape, "server_evals_ok_total")
    );
    println!("OK: phase breakdown complete and consistent with end-to-end latency.\n");

    // Prometheus-style text, validated and optionally dumped for CI.
    let text_response = probe.metrics(200, MetricsFormat::Text)?;
    let ResponseBody::Metrics(MetricsFrame::Text(page)) = &text_response.body else {
        panic!("metrics text endpoint returned {text_response:?}");
    };
    validate_text(page).expect("exposition page validates");
    assert!(page.contains("server_phase_ns_bucket"));
    assert!(page.contains("runtime_evaluate_ns_count"));
    if let Some(path) = &dump_metrics {
        std::fs::write(path, page)?;
        println!("metrics : dumped {} exposition bytes to {path}", page.len());
    }

    // Span export: each drain hands the ring's timelines to one scraper.
    let spans_response = probe.metrics(201, MetricsFormat::Spans)?;
    let ResponseBody::Metrics(MetricsFrame::Spans(spans)) = &spans_response.body else {
        panic!("metrics spans endpoint returned {spans_response:?}");
    };
    assert!(
        !spans.is_empty(),
        "tracing at 1:1 must export span timelines"
    );
    assert!(spans.iter().all(|line| line.starts_with("{\"id\":")));
    println!(
        "metrics : JSON scrape {} families, text page {} bytes, {} span timelines\n",
        scrape.families.len(),
        page.len(),
        spans.len()
    );

    drop(probe);
    server.shutdown();

    // ---- Phase 3: overload sheds, typed and bounded ------------------------
    let tiny = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(workers)
            .with_queue_capacity(1),
    )?;
    // Distinct, uncached configurations keep evaluations slow enough that a
    // pipelined burst must overrun the capacity-1 admission queue.
    let mut burst = LoadGenOptions::paper_mix(clients, requests.max(32), 0xBEEF);
    burst.scenarios = (0..64)
        .map(|i| {
            EvalSpec::crosslight(
                crosslight::core::variants::CrossLightVariant::all()[i % 4],
                (10 + i, 160 + i, 40 + i, 20 + i),
                16,
                WorkloadRef::Model(PaperModel::all()[i % 4]),
            )
        })
        .collect();
    let overload = loadgen::run(tiny.local_addr(), &burst)?;
    let tiny_stats = tiny.stats();
    assert_eq!(
        overload.ok + overload.shed,
        overload.sent,
        "every request is answered exactly once: {overload:?}"
    );
    assert!(overload.ok > 0, "admitted work must complete");
    assert!(
        overload.shed > 0,
        "a pipelined burst against capacity 1 must shed"
    );
    assert_eq!(tiny_stats.server.shed_total, overload.shed);
    assert_eq!(tiny_stats.server.in_flight, 0);
    println!(
        "overload: {} sent → {} ok, {} shed (typed `overloaded` frames), 0 hangs",
        overload.sent, overload.ok, overload.shed
    );

    // ---- Phase 4: drain with clients connected -----------------------------
    let idle = Client::connect(tiny.local_addr())?;
    tiny.shutdown();
    drop(idle);
    println!("drain   : shutdown completed with a client connected\n");

    println!(
        "OK: served {:.0} req/s warm over {} connections; overload shed {} of {}; drain clean.",
        warm_rps, options.clients, overload.shed, overload.sent
    );
    Ok(())
}
