//! Serves the CrossLight evaluation runtime over TCP/JSON-lines and drives
//! it with the in-crate load generator — the end-to-end smoke of the
//! `crosslight::server` stack.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve -- --port 0 --workers 4 --clients 4 --requests 64
//! ```
//!
//! Three phases, each of which panics (non-zero exit, so CI can use this as
//! a smoke test) if its invariant does not hold:
//!
//! 1. **Equivalence** — a mixed paper-scenario load is replayed twice over
//!    `--clients` concurrent connections; every wire response must be
//!    bit-identical to direct in-process `EvalService` dispatch of the same
//!    scenario, and the second (cache-warm) pass must hit the cache.
//! 2. **Overload** — the same mix is fired at a capacity-1 server; the
//!    overload path must observably shed with typed `overloaded` frames
//!    while still answering every request exactly once.
//! 3. **Drain** — shutdown with clients connected must complete without
//!    hanging (the process exiting is the proof).

use std::collections::HashMap;
use std::sync::Arc;

use crosslight::core::simulator::SimulationReport;
use crosslight::neural::workload::NetworkWorkload;
use crosslight::neural::zoo::PaperModel;
use crosslight::runtime::prelude::*;
use crosslight::server::loadgen::{self, Client, LoadGenOptions};
use crosslight::server::server::{Server, ServerOptions};
use crosslight::server::wire::{EvalSpec, ResponseBody, WorkloadRef};

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a non-negative integer, got `{v}`"))
        })
        .unwrap_or(default)
}

/// Direct in-process dispatch of every distinct scenario of the mix, used
/// as the ground truth the wire responses must reproduce bit-for-bit.
fn direct_reports(
    options: &LoadGenOptions,
    service: &EvalService,
) -> HashMap<u64, SimulationReport> {
    let workloads: [Arc<NetworkWorkload>; 4] = PaperModel::all()
        .map(|m| Arc::new(NetworkWorkload::from_spec(&m.spec()).expect("paper models are valid")));
    let mut by_id = HashMap::new();
    for client in 0..options.clients {
        for (index, spec) in options.client_specs(client).into_iter().enumerate() {
            let request = spec
                .to_eval_request(options.request_id(client, index), &workloads)
                .expect("mix scenarios are valid");
            let response = service.submit(request).expect("direct dispatch succeeds");
            by_id.insert(options.request_id(client, index), response.report);
        }
    }
    by_id
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let port = parse_flag(&args, "--port", 0);
    let workers = parse_flag(&args, "--workers", 4).max(1);
    let clients = parse_flag(&args, "--clients", 4).max(1);
    let requests = parse_flag(&args, "--requests", 64).max(1);

    println!("=== crosslight-server — TCP/JSON-lines front-end over the runtime ===\n");

    // ---- Phase 1: serve + prove equivalence --------------------------------
    let server = Server::bind(
        format!("127.0.0.1:{port}"),
        ServerOptions::default()
            .with_workers(workers)
            .with_queue_capacity(16 * 1024),
    )?;
    let addr = server.local_addr();
    println!("listening on {addr} ({workers} eval workers)");

    let options = LoadGenOptions::paper_mix(clients, requests, 0x5EED);
    let direct_service = EvalService::new(RuntimeOptions::default().with_workers(workers));
    let expected = direct_reports(&options, &direct_service);

    let mut warm_rps = 0.0;
    for pass in 0..2 {
        let report = loadgen::run(addr, &options)?;
        assert_eq!(report.ok, report.sent, "no request may fail: {report:?}");
        assert_eq!(report.shed, 0, "nothing may be shed below capacity");
        for (id, response) in &report.responses {
            let ResponseBody::Eval(frame) = &response.body else {
                panic!("id {id}: unexpected response {response:?}");
            };
            assert_eq!(
                frame.report, expected[id],
                "id {id}: wire response diverged from direct EvalService dispatch"
            );
        }
        let label = if pass == 0 { "cold" } else { "warm" };
        println!(
            "pass {label}: {} requests over {} connections in {:.2?}  ({:>8.0} req/s)",
            report.sent,
            options.clients,
            report.elapsed,
            report.throughput_rps()
        );
        warm_rps = report.throughput_rps();
    }
    let stats = server.stats();
    assert!(
        stats.runtime.cache_hits > 0,
        "the warm pass must hit the cache"
    );
    println!(
        "cache   : {} hits / {} misses ({:.0}% hit rate), {} prepared configs",
        stats.runtime.cache_hits,
        stats.runtime.cache_misses,
        stats.runtime.hit_rate() * 100.0,
        stats.runtime.prepared_configs
    );
    println!(
        "server  : {} frames, {} evals ok, shed {}, malformed {}",
        stats.server.requests_total,
        stats.server.evals_ok,
        stats.server.shed_total,
        stats.server.malformed_total
    );
    println!("OK: every wire response bit-identical to direct EvalService dispatch.\n");

    // A stats request over the wire itself.
    let mut probe = Client::connect(addr)?;
    let stats_frame = probe.stats(0)?;
    let ResponseBody::Stats(wire_stats) = &stats_frame.body else {
        panic!("stats endpoint returned {stats_frame:?}");
    };
    println!(
        "wire stats: queue {}/{} in flight, per-worker {:?}, queue depths {:?}\n",
        wire_stats.server.in_flight,
        wire_stats.server.queue_capacity,
        wire_stats.runtime.per_worker,
        wire_stats.runtime.queue_depths
    );
    drop(probe);
    server.shutdown();

    // ---- Phase 2: overload sheds, typed and bounded ------------------------
    let tiny = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(workers)
            .with_queue_capacity(1),
    )?;
    // Distinct, uncached configurations keep evaluations slow enough that a
    // pipelined burst must overrun the capacity-1 admission queue.
    let mut burst = LoadGenOptions::paper_mix(clients, requests.max(32), 0xBEEF);
    burst.scenarios = (0..64)
        .map(|i| {
            EvalSpec::crosslight(
                crosslight::core::variants::CrossLightVariant::all()[i % 4],
                (10 + i, 160 + i, 40 + i, 20 + i),
                16,
                WorkloadRef::Model(PaperModel::all()[i % 4]),
            )
        })
        .collect();
    let overload = loadgen::run(tiny.local_addr(), &burst)?;
    let tiny_stats = tiny.stats();
    assert_eq!(
        overload.ok + overload.shed,
        overload.sent,
        "every request is answered exactly once: {overload:?}"
    );
    assert!(overload.ok > 0, "admitted work must complete");
    assert!(
        overload.shed > 0,
        "a pipelined burst against capacity 1 must shed"
    );
    assert_eq!(tiny_stats.server.shed_total, overload.shed);
    assert_eq!(tiny_stats.server.in_flight, 0);
    println!(
        "overload: {} sent → {} ok, {} shed (typed `overloaded` frames), 0 hangs",
        overload.sent, overload.ok, overload.shed
    );

    // ---- Phase 3: drain with clients connected -----------------------------
    let idle = Client::connect(tiny.local_addr())?;
    tiny.shutdown();
    drop(idle);
    println!("drain   : shutdown completed with a client connected\n");

    println!(
        "OK: served {:.0} req/s warm over {} connections; overload shed {} of {}; drain clean.",
        warm_rps, options.clients, overload.shed, overload.sent
    );
    Ok(())
}
