//! Drives the `crosslight::runtime` evaluation service with a mixed stream
//! of paper-model requests and reports throughput, cache hit rate and
//! per-worker load — then proves the batched results are bit-identical to
//! serial simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example runtime_service -- --workers 4 --repeats 3
//! ```
//!
//! The process exits non-zero (panics) if any batched report differs from
//! its serial counterpart or if the repeated traffic produces no cache hits,
//! so CI can use it as a smoke test.

use std::time::Instant;

use crosslight::core::prelude::*;
use crosslight::runtime::prelude::*;

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a positive integer, got `{v}`"))
        })
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let workers = parse_flag(&args, "--workers", 4).max(1);
    let repeats = parse_flag(&args, "--repeats", 3).max(1);

    println!("=== crosslight-runtime — concurrent batched evaluation service ===\n");

    // A mixed production-style stream: every variant × two architecture
    // candidates × two resolutions × all four paper models, replayed
    // `repeats` times.
    let planner = SweepPlanner::new()
        .variants(&CrossLightVariant::all())
        .architectures(&[crosslight::core::config::BEST_CONFIG, (10, 100, 50, 30)])
        .resolutions(&[16, 8])
        .repeats(repeats);
    let requests = planner.plan()?;
    let unique = requests.len() / repeats;
    println!(
        "stream: {} requests ({} unique scenarios × {} repeats), {} workers",
        requests.len(),
        unique,
        repeats,
        workers
    );

    // Serial baseline: one-shot simulator calls, no sharing, no cache.
    let serial_start = Instant::now();
    let serial: Vec<SimulationReport> = requests
        .iter()
        .map(|r| {
            CrossLightSimulator::new(r.config().expect("CrossLight request")).evaluate(&r.workload)
        })
        .collect::<Result<_, _>>()?;
    let serial_elapsed = serial_start.elapsed();

    // The same stream through the service.
    let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
    let batched_start = Instant::now();
    let responses = service.submit_batch(requests)?;
    let batched_elapsed = batched_start.elapsed();

    // Bit-identical or bust.
    assert_eq!(responses.len(), serial.len());
    for (response, expected) in responses.iter().zip(&serial) {
        assert_eq!(
            response.report, *expected,
            "batched report diverged from serial evaluation"
        );
    }

    let stats = service.stats();
    let serial_rps = serial.len() as f64 / serial_elapsed.as_secs_f64();
    let batched_rps = responses.len() as f64 / batched_elapsed.as_secs_f64();
    println!("\nserial  : {serial_elapsed:>10.2?}  ({serial_rps:>10.0} req/s)");
    println!("runtime : {batched_elapsed:>10.2?}  ({batched_rps:>10.0} req/s)");
    println!(
        "speedup : {:.2}×",
        serial_elapsed.as_secs_f64() / batched_elapsed.as_secs_f64()
    );
    println!(
        "\ncache   : {} hits / {} misses ({:.0}% hit rate), {} entries",
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate() * 100.0,
        stats.cached_entries
    );
    print!("workers :");
    for (worker, count) in stats.per_worker.iter().enumerate() {
        print!(" [{worker}] {count}");
    }
    println!();

    if repeats > 1 {
        assert!(
            stats.cache_hits > 0,
            "repeated traffic must produce cache hits"
        );
    }
    assert_eq!(stats.cached_entries as u64, stats.cache_misses);
    println!("\nOK: batched results bit-identical to serial, cache active.");
    Ok(())
}
