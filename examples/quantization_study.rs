//! Reproduces the Fig. 5 accuracy-vs-resolution study on the synthetic
//! stand-in datasets, and relates it to the architecture's achievable
//! resolution (§V.B).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quantization_study
//! ```

use crosslight::experiments::fig5_accuracy::{self, AccuracyStudyConfig};
use crosslight::experiments::resolution_analysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Section V.B — achievable resolution vs. MRs per bank ===\n");
    let analysis = resolution_analysis::run(20);
    print!("{}", analysis.table().render());
    println!(
        "\nHolyLight microdisk resolution: {} bits per device (combined 8x to reach 16)",
        analysis.microdisk_bits
    );

    println!("\n=== Fig. 5 — accuracy (%) vs. weight/activation resolution ===");
    println!("(surrogate models on synthetic stand-in datasets; see DESIGN.md)\n");
    let config = AccuracyStudyConfig {
        bit_widths: vec![1, 2, 3, 4, 6, 8, 12, 16],
        samples_per_class: 20,
        epochs: 15,
        seed: 2021,
    };
    let study = fig5_accuracy::run(&config)?;
    print!("{}", study.table().render());

    println!("\nfull-precision reference accuracies:");
    for curve in &study.curves {
        println!(
            "  {:<28} {:>5.1} %",
            curve.dataset,
            curve.full_precision_accuracy * 100.0
        );
    }
    Ok(())
}
