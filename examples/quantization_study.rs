//! Reproduces the Fig. 5 accuracy-vs-resolution study on the synthetic
//! stand-in datasets, and relates it to the architecture's achievable
//! resolution (§V.B).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quantization_study
//! cargo run --release --example quantization_study -- --workers 8
//! ```
//!
//! With `--workers N` the `(model × bit-width)` training cells run on `N`
//! threads via [`fig5_accuracy::run_parallel`]; the output table is
//! byte-identical to the serial sweep.

use std::time::Instant;

use crosslight::experiments::fig5_accuracy::{self, AccuracyStudyConfig};
use crosslight::experiments::resolution_analysis;

fn workers_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let index = args.iter().position(|a| a == "--workers")?;
    match args.get(index + 1).map(|v| v.parse()) {
        Some(Ok(workers)) => Some(workers),
        _ => {
            eprintln!("error: --workers requires a positive integer argument");
            std::process::exit(2);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Section V.B — achievable resolution vs. MRs per bank ===\n");
    let analysis = resolution_analysis::run(20);
    print!("{}", analysis.table().render());
    println!(
        "\nHolyLight microdisk resolution: {} bits per device (combined 8x to reach 16)",
        analysis.microdisk_bits
    );

    println!("\n=== Fig. 5 — accuracy (%) vs. weight/activation resolution ===");
    println!("(surrogate models on synthetic stand-in datasets; see DESIGN.md)\n");
    let config = AccuracyStudyConfig {
        bit_widths: vec![1, 2, 3, 4, 6, 8, 12, 16],
        samples_per_class: 20,
        epochs: 15,
        seed: 2021,
    };
    let start = Instant::now();
    let study = match workers_from_args() {
        Some(workers) => {
            println!("(parallel sweep across {workers} workers)");
            fig5_accuracy::run_parallel(&config, workers)?
        }
        None => fig5_accuracy::run(&config)?,
    };
    let elapsed = start.elapsed();
    print!("{}", study.table().render());
    println!("\nsweep completed in {:.2} s", elapsed.as_secs_f64());

    println!("\nfull-precision reference accuracies:");
    for curve in &study.curves {
        println!(
            "  {:<28} {:>5.1} %",
            curve.dataset,
            curve.full_precision_accuracy * 100.0
        );
    }
    Ok(())
}
